"""Incremental evaluation under a changing database (``-m delta``).

The never-stale-wrong tier for :mod:`repro.db.delta`:

- **token identity** — the incrementally-maintained ``cache_token`` of
  a delta-applied database is *bitwise-identical* to rebuilding the
  database from scratch, property-tested over random insert / delete /
  reweight streams (the homomorphic multiset hash is order-free and
  cancellative, so this is an algebraic identity, not a fixture);
- **transactional apply** — conflicting ops abort with
  :class:`~repro.errors.DeltaError` before any state changes, and a
  reweight-only delta shares the parent's unweighted instance object;
- **WAL recovery** — a journalled version chain replays to the same
  head token; foreign bases, broken chains, torn tails and flipped
  bits are refused or quarantined, never replayed wrong;
- **structure-aware invalidation** — a delta evicts exactly the warm
  artifacts keyed on a touched relation (memory, disk shadow, kernel
  memos); disjoint-relation and query-only (``relations=∅``) artifacts
  survive, and answers served from survivors are bitwise-identical to
  a cold evaluation on the new version.
"""

from __future__ import annotations

import random
from fractions import Fraction
from types import MappingProxyType

import pytest
from hypothesis import given, settings
from hypothesis import strategies as st

from repro.core.cache import ReductionCache
from repro.core.estimator import PQEEngine
from repro.core.exact import exact_probability
from repro.db import (
    DatabaseInstance,
    Delta,
    DeltaOp,
    Fact,
    ProbabilisticDatabase,
    VersionedDatabase,
    apply_delta,
    load_delta_journal,
)
from repro.errors import DeltaError, JournalError
from repro.obs import EvaluationTelemetry, telemetry_scope
from repro.queries.parser import parse_query
from repro.testing.faults import flip_bit, truncate_tail

pytestmark = pytest.mark.delta

R1AB = Fact("R1", ("a", "b"))
R2BC = Fact("R2", ("b", "c"))
S1XY = Fact("S1", ("x", "y"))
S2YZ = Fact("S2", ("y", "z"))

RQ = parse_query("Q :- R1(x, y), R2(y, z)")
SQ = parse_query("Q :- S1(x, y), S2(y, z)")


def base_pdb() -> ProbabilisticDatabase:
    return ProbabilisticDatabase({
        R1AB: "1/2",
        R2BC: "2/3",
        S1XY: "3/4",
        S2YZ: "2/5",
    })


def rebuilt(pdb: ProbabilisticDatabase) -> ProbabilisticDatabase:
    """The from-scratch oracle: same facts, fresh accumulators."""
    return ProbabilisticDatabase(dict(pdb.probabilities))


# ---------------------------------------------------------------------
# Op and delta validation
# ---------------------------------------------------------------------

def test_unknown_op_is_rejected():
    with pytest.raises(DeltaError, match="unknown delta op"):
        DeltaOp("upsert", R1AB, "1/2")


def test_delete_must_not_carry_a_probability():
    with pytest.raises(DeltaError, match="must not carry"):
        DeltaOp("delete", R1AB, "1/2")


def test_insert_and_reweight_require_a_probability():
    for op in ("insert", "reweight"):
        with pytest.raises(DeltaError, match="require a probability"):
            DeltaOp(op, R1AB)


def test_empty_delta_is_rejected():
    with pytest.raises(DeltaError, match="at least one op"):
        Delta([])


def test_malformed_record_is_a_delta_error():
    with pytest.raises(DeltaError, match="malformed delta op record"):
        DeltaOp.from_record({"op": "insert"})


def test_record_round_trip():
    ops = [
        DeltaOp.insert(Fact("R1", ("z", "z")), "1/7"),
        DeltaOp.delete(R2BC),
        DeltaOp.reweight(R1AB, "5/6"),
    ]
    delta = Delta(ops)
    again = Delta.from_records(delta.to_records())
    assert again.ops == delta.ops
    assert again.digest == delta.digest


def test_digest_is_order_sensitive():
    fresh = Fact("R1", ("q", "q"))
    legal = Delta([DeltaOp.insert(fresh, "1/2"),
                   DeltaOp.reweight(fresh, "1/3")])
    swapped = Delta([DeltaOp.reweight(fresh, "1/3"),
                     DeltaOp.insert(fresh, "1/2")])
    assert legal.digest != swapped.digest
    assert legal.touched_relations == frozenset({"R1"})


# ---------------------------------------------------------------------
# Transactional apply semantics
# ---------------------------------------------------------------------

def test_insert_delete_reweight_semantics():
    new = Fact("R1", ("c", "d"))
    pdb = apply_delta(base_pdb(), Delta([
        DeltaOp.insert(new, "1/7"),
        DeltaOp.delete(S1XY),
        DeltaOp.reweight(R2BC, "1/3"),
    ]))
    assert pdb.probabilities[new] == Fraction(1, 7)
    assert S1XY not in pdb.probabilities
    assert pdb.probabilities[R2BC] == Fraction(1, 3)
    assert pdb.cache_token == rebuilt(pdb).cache_token


@pytest.mark.parametrize("delta,message", [
    (Delta([DeltaOp.insert(R1AB, "1/2")]), "already"),
    (Delta([DeltaOp.delete(Fact("R1", ("no", "no")))]), "not"),
    (Delta([DeltaOp.reweight(Fact("R9", ("a", "b")), "1/2")]), "not"),
])
def test_conflicting_ops_abort_with_no_state_change(delta, message):
    base = base_pdb()
    token = base.cache_token
    with pytest.raises(DeltaError, match=message):
        apply_delta(base, delta)
    assert base.cache_token == token
    assert len(base) == 4


def test_sequenced_ops_validate_against_the_evolving_state():
    fresh = Fact("R1", ("q", "q"))
    pdb = apply_delta(base_pdb(), Delta([
        DeltaOp.insert(fresh, "1/2"),
        DeltaOp.reweight(fresh, "1/3"),   # legal only after the insert
    ]))
    assert pdb.probabilities[fresh] == Fraction(1, 3)
    with pytest.raises(DeltaError):
        apply_delta(base_pdb(), Delta([
            DeltaOp.delete(R1AB),
            DeltaOp.delete(R1AB),          # second delete sees it gone
        ]))


def test_reweight_only_delta_shares_the_instance():
    base = base_pdb()
    pdb = apply_delta(base, Delta([DeltaOp.reweight(R1AB, "9/10")]))
    assert pdb.instance is base.instance
    assert pdb.cache_token != base.cache_token
    assert pdb.cache_token == rebuilt(pdb).cache_token


def test_probabilities_is_a_cached_readonly_view():
    pdb = base_pdb()
    view = pdb.probabilities
    assert isinstance(view, MappingProxyType)
    assert pdb.probabilities is view          # cached, not rebuilt
    with pytest.raises(TypeError):
        view[R1AB] = Fraction(1, 3)


# ---------------------------------------------------------------------
# Token identity: incremental == from-scratch, property-tested
# ---------------------------------------------------------------------

def _random_stream(rng: random.Random, steps: int):
    """A valid delta stream over an evolving fact set."""
    pdb = base_pdb()
    live = dict(pdb.probabilities)
    deltas = []
    denominators = (2, 3, 5, 7, 11)
    for step in range(steps):
        ops = []
        for _ in range(rng.randint(1, 3)):
            prob = Fraction(
                1, denominators[rng.randrange(len(denominators))]
            )
            kind = rng.random()
            if kind < 0.4 or not live:
                fact = Fact(
                    f"R{rng.randint(1, 3)}",
                    (f"n{step}", f"m{len(ops)}-{rng.randint(0, 9)}"),
                )
                if fact in live:
                    continue
                live[fact] = prob
                ops.append(DeltaOp.insert(fact, prob))
            elif kind < 0.7:
                fact = rng.choice(sorted(live, key=repr))
                del live[fact]
                ops.append(DeltaOp.delete(fact))
            else:
                fact = rng.choice(sorted(live, key=repr))
                live[fact] = prob
                ops.append(DeltaOp.reweight(fact, prob))
        if ops:
            deltas.append(Delta(ops))
    return deltas


@settings(max_examples=25, deadline=None)
@given(seed=st.integers(0, 10_000))
def test_incremental_token_is_bitwise_from_scratch(seed):
    rng = random.Random(seed)
    pdb = base_pdb()
    for delta in _random_stream(rng, steps=8):
        pdb = apply_delta(pdb, delta)
        oracle = rebuilt(pdb)
        assert pdb.cache_token == oracle.cache_token
        assert (
            pdb.instance.cache_token == oracle.instance.cache_token
        )
        for relations in (
            frozenset({"R1"}),
            frozenset({"R1", "R2"}),
            frozenset({"S1", "S2"}),
            frozenset({"absent"}),
            frozenset(),
        ):
            assert pdb.projection_token(relations) == (
                oracle.projection_token(relations)
            )
            assert pdb.instance.projection_token(relations) == (
                oracle.instance.projection_token(relations)
            )


def test_projection_token_ignores_untouched_relations():
    base = base_pdb()
    pdb = apply_delta(
        base, Delta([DeltaOp.reweight(S1XY, "1/9")])
    )
    r_relations = frozenset({"R1", "R2"})
    assert pdb.projection_token(r_relations) == (
        base.projection_token(r_relations)
    )
    assert pdb.projection_token(frozenset({"S1"})) != (
        base.projection_token(frozenset({"S1"}))
    )


# ---------------------------------------------------------------------
# The versioned database and its WAL
# ---------------------------------------------------------------------

def test_versions_are_immutable_and_ordered(tmp_path):
    vdb = VersionedDatabase(base_pdb())
    v0 = vdb.current
    v1 = vdb.apply(Delta([DeltaOp.reweight(R1AB, "1/5")]))
    v2 = vdb.apply(Delta([DeltaOp.delete(S2YZ)]))
    assert (v0.version, v1.version, v2.version) == (0, 1, 2)
    assert vdb.version == 2
    assert v0.pdb.probabilities[R1AB] == Fraction(1, 2)
    assert v1.pdb.probabilities[R1AB] == Fraction(1, 5)
    assert S2YZ not in v2.pdb.probabilities
    assert vdb.cache_token == v2.token


def test_journal_round_trip_and_recovery(tmp_path):
    wal = tmp_path / "deltas.wal"
    deltas = [
        Delta([DeltaOp.insert(Fact("R1", ("c", "d")), "1/7")]),
        Delta([DeltaOp.reweight(R2BC, "1/3"),
               DeltaOp.delete(S1XY)]),
    ]
    with VersionedDatabase(base_pdb(), journal=wal) as vdb:
        for delta in deltas:
            vdb.apply(delta)
        head = vdb.current

    loaded = load_delta_journal(wal)
    assert len(loaded) == 2
    assert loaded.quarantined == 0
    assert loaded.applied[1]["version"] == 1

    with VersionedDatabase(base_pdb(), journal=wal) as again:
        assert again.recovered == 2
        assert again.version == 2
        assert again.cache_token == head.token
        assert dict(again.pdb.probabilities) == dict(
            head.pdb.probabilities
        )


def test_foreign_base_is_refused(tmp_path):
    wal = tmp_path / "deltas.wal"
    with VersionedDatabase(base_pdb(), journal=wal) as vdb:
        vdb.apply(Delta([DeltaOp.delete(R1AB)]))
    other = ProbabilisticDatabase({R1AB: "1/9"})
    with pytest.raises(JournalError, match="different base"):
        VersionedDatabase(other, journal=wal)


def test_torn_tail_recovers_the_valid_prefix(tmp_path):
    wal = tmp_path / "deltas.wal"
    with VersionedDatabase(base_pdb(), journal=wal) as vdb:
        vdb.apply(Delta([DeltaOp.reweight(R1AB, "1/5")]))
        vdb.apply(Delta([DeltaOp.reweight(R1AB, "1/6")]))
    # Tear mid-way through the second delta record: drop the final
    # trailer line and all but 25 bytes of the record before it.
    lines = wal.read_bytes().split(b"\n")
    header, delta1, applied1, delta2, applied2 = lines[:5]
    truncate_tail(
        wal, len(applied2) + 1 + (len(delta2) + 1 - 25)
    )
    with pytest.warns(Warning, match="quarantin"):
        with VersionedDatabase(base_pdb(), journal=wal) as again:
            # The torn record falls away; the valid prefix replays
            # bitwise.
            assert again.recovered == 1
            expected = apply_delta(
                base_pdb(),
                Delta([DeltaOp.reweight(R1AB, "1/5")]),
            )
            assert again.cache_token == expected.cache_token


def test_flipped_bit_quarantines_the_chain_suffix(tmp_path):
    wal = tmp_path / "deltas.wal"
    with VersionedDatabase(base_pdb(), journal=wal) as vdb:
        vdb.apply(Delta([DeltaOp.reweight(R1AB, "1/5")]))
    blob = wal.read_bytes()
    # Damage the middle of the first delta record (after the header
    # line) — the checksum catches it and the suffix is quarantined.
    header_end = blob.index(b"\n")
    flip_bit(wal, offset=header_end + 40)
    with pytest.warns(Warning, match="quarantin"):
        with VersionedDatabase(base_pdb(), journal=wal) as again:
            assert again.version == 0
            assert again.cache_token == base_pdb().cache_token


# ---------------------------------------------------------------------
# Structure-aware invalidation
# ---------------------------------------------------------------------

def test_invalidation_is_selective_and_counted():
    cache = ReductionCache()
    engine = PQEEngine(epsilon=0.5, seed=3, cache=cache)
    pdb = base_pdb()
    engine.probability(RQ, pdb, method="fpras")
    engine.probability(SQ, pdb, method="fpras")
    warm_misses = cache.stats.misses

    vdb = VersionedDatabase(pdb)
    vdb.attach_cache(cache)
    telemetry = EvaluationTelemetry()
    with telemetry_scope(telemetry):
        vdb.apply(Delta([DeltaOp.reweight(R1AB, "1/3")]))
    counters = telemetry.metrics.counters
    assert counters["delta.applied"] == 1
    assert counters["delta.invalidated.cache"] >= 1
    assert counters["delta.survived"] >= 1

    # The S-side pipeline survived: re-evaluating on the old head
    # costs zero new misses …
    engine.probability(SQ, pdb, method="fpras")
    assert cache.stats.misses == warm_misses
    # … while the touched R-side was reclaimed and rebuilds.
    engine.probability(RQ, vdb.pdb, method="fpras")
    assert cache.stats.misses > warm_misses


def test_structural_relations_exclude_pure_reweights():
    mixed = Delta([
        DeltaOp.reweight(R1AB, "1/3"),
        DeltaOp.insert(Fact("R2", ("b", "d")), "1/7"),
    ])
    assert mixed.touched_relations == frozenset({"R1", "R2"})
    assert mixed.structural_relations == frozenset({"R2"})
    assert Delta(
        [DeltaOp.reweight(R1AB, "1/3")]
    ).structural_relations == frozenset()


def test_unweighted_artifacts_survive_reweight_only_deltas():
    """The UR pipeline is keyed on unweighted projection tokens, so a
    reweight-only delta must spare 100% of its artifacts — the bench
    gate in ``benchmarks/bench_incremental.py`` holds this at scale."""
    cache = ReductionCache()
    engine = PQEEngine(epsilon=0.5, seed=17, cache=cache)
    pdb = base_pdb()
    engine.uniform_reliability(RQ, pdb.instance, method="fpras")
    warm_misses = cache.stats.misses

    vdb = VersionedDatabase(pdb)
    vdb.attach_cache(cache)
    telemetry = EvaluationTelemetry()
    with telemetry_scope(telemetry):
        vdb.apply(Delta([DeltaOp.reweight(R1AB, "1/9")]))
    counters = telemetry.metrics.counters
    assert counters.get("delta.invalidated.cache", 0) == 0
    assert counters["delta.survived"] >= 1

    # Re-running UR on the *new* head costs zero new misses: the fact
    # sets (and therefore every key) are unchanged by a reweight.
    engine.uniform_reliability(RQ, vdb.pdb.instance, method="fpras")
    assert cache.stats.misses == warm_misses

    # An insert into the same relation is structural and reclaims.
    with telemetry_scope(telemetry):
        vdb.apply(
            Delta([DeltaOp.insert(Fact("R1", ("a", "c")), "1/4")])
        )
    assert telemetry.metrics.counters["delta.invalidated.cache"] >= 1


def test_query_only_artifacts_survive_every_delta():
    cache = ReductionCache()

    build_count = 0

    def build():
        nonlocal build_count
        build_count += 1
        return object()

    # relations=∅ is the contract for query-only artifacts (GHDs, RPQ
    # products): no relational delta may ever evict them.
    first = cache.get_or_build(
        ("ghd", "some-query"), build, relations=frozenset()
    )
    counts = cache.invalidate_relations(frozenset({"R1", "S1"}))
    assert counts["cache"] == 0
    assert counts["survived"] == 1
    again = cache.get_or_build(
        ("ghd", "some-query"), build, relations=frozenset()
    )
    assert again is first
    assert build_count == 1


def test_unregistered_entries_are_evicted_conservatively():
    cache = ReductionCache()
    cache.get_or_build(("legacy", "key"), lambda: object())
    counts = cache.invalidate_relations(frozenset({"R1"}))
    assert counts["cache"] == 1


def test_surviving_entries_answer_bitwise_like_a_cold_run():
    """The never-stale-wrong acceptance check: after a delta to an
    unrelated relation, answers served through the surviving warm
    cache are bitwise-identical to a cold engine on the new version."""
    cache = ReductionCache()
    warm = PQEEngine(epsilon=0.5, seed=11, cache=cache)
    pdb = base_pdb()
    warm.probability(RQ, pdb, method="fpras")

    vdb = VersionedDatabase(pdb)
    vdb.attach_cache(cache)
    vdb.apply(Delta([DeltaOp.reweight(S1XY, "1/9"),
                     DeltaOp.delete(S2YZ)]))
    head = vdb.pdb

    before = cache.stats.misses
    warm_answer = warm.probability(RQ, head, method="fpras")
    assert cache.stats.misses == before      # served from survivors

    cold = PQEEngine(epsilon=0.5, seed=11, cache=ReductionCache())
    cold_answer = cold.probability(RQ, head, method="fpras")
    assert warm_answer.value == cold_answer.value
    assert warm_answer.method == cold_answer.method

    oracle = exact_probability(RQ, head)
    assert warm_answer.value == pytest.approx(float(oracle), abs=0.5)


def test_touched_artifacts_recompute_to_the_new_answer():
    cache = ReductionCache()
    engine = PQEEngine(epsilon=0.5, seed=5, cache=cache)
    pdb = ProbabilisticDatabase({R1AB: "1/2", R2BC: "2/3"})
    engine.probability(RQ, pdb, method="fpras")

    vdb = VersionedDatabase(pdb)
    vdb.attach_cache(cache)
    vdb.apply(Delta([DeltaOp.reweight(R1AB, "1/1")]))
    head = vdb.pdb

    answer = engine.probability(RQ, head, method="fpras")
    cold = PQEEngine(epsilon=0.5, seed=5, cache=ReductionCache())
    assert answer.value == cold.probability(
        RQ, head, method="fpras"
    ).value
    oracle = exact_probability(RQ, head)
    assert oracle == Fraction(2, 3)
    assert answer.value == pytest.approx(float(oracle), abs=0.5)


# ---------------------------------------------------------------------
# Version pinning through the engine entry points
# ---------------------------------------------------------------------

def test_engine_entry_points_pin_the_versioned_head():
    vdb = VersionedDatabase(base_pdb())
    engine = PQEEngine(epsilon=0.5, seed=2)
    direct = engine.probability(RQ, vdb.pdb, method="fpras")
    pinned = engine.probability(RQ, vdb, method="fpras")
    assert pinned.value == direct.value

    ur_direct = engine.uniform_reliability(
        RQ, vdb.pdb.instance, method="fpras"
    )
    ur_pinned = engine.uniform_reliability(RQ, vdb, method="fpras")
    assert ur_pinned.value == ur_direct.value


def test_instance_projection_matches_unweighted_semantics():
    instance = DatabaseInstance([R1AB, R2BC])
    assert instance.projection_token(frozenset({"R1"})) != (
        instance.projection_token(frozenset({"R2"}))
    )
    assert instance.projection_token(frozenset({"R1", "R2"})) == (
        DatabaseInstance([R2BC, R1AB]).projection_token(
            frozenset({"R1", "R2"})
        )
    )
