"""Tests for exact and approximate NFTA counting."""

import random

import pytest
from hypothesis import given, settings
from hypothesis import strategies as st

from repro.automata.nfta import LAMBDA, NFTA
from repro.automata.nfta_counting import (
    count_nfta,
    count_nfta_exact,
    sample_accepted_trees,
)
from repro.automata.trees import LabeledTree, leaf
from repro.errors import AutomatonError, EstimationError


def _catalan_automaton() -> NFTA:
    """Full binary trees over a single symbol: sizes 1, 3, 5, …

    The number of full binary trees with m internal nodes is the m-th
    Catalan number, giving closed-form ground truth.
    """
    return NFTA(
        [("q", "a", ()), ("q", "a", ("q", "q"))], initial="q"
    )


def _random_nfta(seed: int, states: int = 4) -> NFTA:
    rng = random.Random(seed)
    transitions = []
    names = [f"s{i}" for i in range(states)]
    for source in names:
        for symbol in "ab":
            if rng.random() < 0.6:
                transitions.append((source, symbol, ()))
            for arity in (1, 2):
                for _ in range(rng.randint(0, 2)):
                    children = tuple(
                        rng.choice(names) for _ in range(arity)
                    )
                    transitions.append((source, symbol, children))
    return NFTA(transitions, initial=names[0])


def _enumerate_trees(nfta: NFTA, size: int):
    """Brute-force enumeration of L_size (testing only)."""
    alphabet = sorted(nfta.alphabet, key=str)
    arities = sorted(
        {len(children) for _s, _a, children in nfta.transitions}
    )

    def gen(n):
        if n < 1:
            return
        for symbol in alphabet:
            if n == 1 and 0 in arities:
                yield leaf(symbol)
            for arity in arities:
                if arity == 0 or n - 1 < arity:
                    continue
                for split in _splits(n - 1, arity):
                    for children in _products(split):
                        yield LabeledTree(symbol, children)

    def _splits(total, k):
        if k == 1:
            yield (total,)
            return
        for first in range(1, total - k + 2):
            for rest in _splits(total - first, k - 1):
                yield (first,) + rest

    def _products(split):
        if not split:
            yield ()
            return
        for head in gen(split[0]):
            for tail in _products(split[1:]):
                yield (head,) + tail

    return [t for t in gen(size) if nfta.accepts(t)]


class TestExactCounting:
    def test_catalan_numbers(self):
        nfta = _catalan_automaton()
        catalan = [1, 1, 2, 5, 14, 42]
        for m, expected in enumerate(catalan):
            assert count_nfta_exact(nfta, 2 * m + 1) == expected
            if m >= 1:
                assert count_nfta_exact(nfta, 2 * m) == 0

    def test_zero_size(self):
        assert count_nfta_exact(_catalan_automaton(), 0) == 0

    def test_lambda_rejected(self):
        nfta = NFTA([("s", LAMBDA, ("t",)), ("t", "a", ())], initial="s")
        with pytest.raises(AutomatonError):
            count_nfta_exact(nfta, 1)

    def test_ambiguity_not_overcounted(self):
        # Two distinct run assignments accept the same tree a(a, a).
        nfta = NFTA(
            [
                ("s", "a", ("p", "r")),
                ("s", "a", ("p", "p")),
                ("p", "a", ()),
                ("r", "a", ()),
            ],
            initial="s",
        )
        assert count_nfta_exact(nfta, 3) == 1

    @given(st.integers(min_value=0, max_value=5_000))
    @settings(max_examples=15, deadline=None)
    def test_matches_enumeration(self, seed):
        nfta = _random_nfta(seed, states=3)
        for size in (1, 2, 3, 4):
            assert count_nfta_exact(nfta, size) == len(
                set(_enumerate_trees(nfta, size))
            )


class TestFPRAS:
    @given(st.integers(min_value=0, max_value=5_000))
    @settings(max_examples=12, deadline=None)
    def test_hybrid_exact_on_small(self, seed):
        nfta = _random_nfta(seed, states=3)
        size = 5
        exact = count_nfta_exact(nfta, size)
        result = count_nfta(nfta, size, epsilon=0.5, seed=seed)
        if result.exact:
            assert result.estimate == exact

    @pytest.mark.parametrize("seed", range(6))
    def test_pure_sampling_accuracy(self, seed):
        nfta = _random_nfta(seed, states=3)
        size = 6
        exact = count_nfta_exact(nfta, size)
        result = count_nfta(
            nfta, size, epsilon=0.2, seed=seed, exact_set_cap=0,
            repetitions=3,
        )
        if exact == 0:
            assert result.estimate == 0
        else:
            assert abs(result.estimate - exact) / exact < 0.4

    def test_catalan_sampling(self):
        nfta = _catalan_automaton()
        size = 9  # 14 trees
        result = count_nfta(
            nfta, size, epsilon=0.2, seed=3, exact_set_cap=0
        )
        assert abs(result.estimate - 14) / 14 < 0.35

    def test_empty_language(self):
        nfta = NFTA([("q", "a", ("q",))], initial="q")
        result = count_nfta(nfta, 4, seed=0)
        assert result.estimate == 0

    def test_invalid_epsilon(self):
        with pytest.raises(EstimationError):
            count_nfta(_catalan_automaton(), 3, epsilon=0)

    def test_determinism(self):
        nfta = _random_nfta(2, states=3)
        a = count_nfta(nfta, 6, seed=9, exact_set_cap=0)
        b = count_nfta(nfta, 6, seed=9, exact_set_cap=0)
        assert a.estimate == b.estimate


class TestTreeSampling:
    def test_samples_accepted_and_sized(self):
        nfta = _catalan_automaton()
        trees = sample_accepted_trees(nfta, 7, k=15, seed=1)
        assert len(trees) == 15
        for tree in trees:
            assert tree.size == 7
            assert nfta.accepts(tree)

    def test_sampling_coverage(self):
        nfta = _catalan_automaton()
        # 5 full binary trees of size 7 (Catalan 3 = 5).
        trees = sample_accepted_trees(
            nfta, 7, k=200, seed=4, exact_set_cap=0
        )
        assert len(set(trees)) == 5

    def test_empty_language_raises(self):
        nfta = NFTA([("q", "a", ("q",))], initial="q")
        with pytest.raises(EstimationError):
            sample_accepted_trees(nfta, 3, k=5, seed=0)


class TestWeightedCounting:
    def test_exact_weighted_leaf(self):
        nfta = NFTA([("q", "a", ()), ("q", "b", ())], initial="q")
        weights = {"a": 3, "b": 5}
        assert count_nfta_exact(nfta, 1, weight_of=weights.get) == 8

    def test_exact_weighted_chain_multiplies(self):
        nfta = NFTA(
            [("q", "a", ("r",)), ("r", "b", ())], initial="q"
        )
        weights = {"a": 2, "b": 7}
        assert count_nfta_exact(nfta, 2, weight_of=weights.get) == 14

    def test_zero_weight_prunes(self):
        nfta = NFTA([("q", "a", ()), ("q", "b", ())], initial="q")
        weights = {"a": 0, "b": 5}
        assert count_nfta_exact(nfta, 1, weight_of=weights.get) == 5

    def test_weighted_ambiguity_not_overcounted(self):
        nfta = NFTA(
            [
                ("s", "a", ("p", "r")),
                ("s", "a", ("p", "p")),
                ("p", "a", ()),
                ("r", "a", ()),
            ],
            initial="s",
        )
        # One distinct tree a(a,a) of weight 2^3.
        assert count_nfta_exact(
            nfta, 3, weight_of=lambda _s: 2
        ) == 8

    def test_fpras_weighted_matches_exact(self):
        nfta = _catalan_automaton()
        weights = {"a": 2}
        size = 7
        exact = count_nfta_exact(nfta, size, weight_of=weights.get)
        result = count_nfta(
            nfta, size, epsilon=0.2, seed=4, exact_set_cap=0,
            weight_of=weights.get, repetitions=3,
        )
        assert abs(result.estimate - exact) / exact < 0.35

    def test_fpras_weighted_hybrid_exact(self):
        nfta = _catalan_automaton()
        weights = {"a": 3}
        size = 5
        exact = count_nfta_exact(nfta, size, weight_of=weights.get)
        result = count_nfta(
            nfta, size, epsilon=0.3, seed=1, weight_of=weights.get
        )
        if result.exact:
            assert result.estimate == exact

    def test_weighted_sampling_proportional(self):
        # Two leaves with weights 1 and 9: draws should be ~10%/90%.
        nfta = NFTA([("q", "light", ()), ("q", "heavy", ())], initial="q")
        weights = {"light": 1, "heavy": 9}
        trees = sample_accepted_trees(
            nfta, 1, k=500, seed=2, weight_of=weights.get,
            exact_set_cap=16,
        )
        heavy = sum(1 for t in trees if t.label == "heavy")
        assert 0.8 < heavy / 500 < 0.97


class TestAdversarialAmbiguity:
    def test_m_identical_subtrees(self):
        # m states all deriving the full binary-tree language: groups at
        # the root contain m overlapping components.
        m = 5
        transitions = []
        names = [f"c{i}" for i in range(m)]
        for name in names:
            transitions.append((name, "a", ()))
            for left in names:
                for right in names:
                    transitions.append((name, "a", (left, right)))
        nfta = NFTA(transitions, initial=names[0])
        size = 5
        exact = count_nfta_exact(nfta, size)
        assert exact == 2  # Catalan(2): the two shapes of size 5
        # Identical overlapping components maximise pool correlation;
        # a generous envelope with median-of-5 still pins the ballpark.
        result = count_nfta(
            nfta, size, epsilon=0.1, seed=2, exact_set_cap=0,
            repetitions=5,
        )
        assert abs(result.estimate - exact) / exact < 0.6
