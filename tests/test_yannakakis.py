"""Tests for the Yannakakis acyclic-CQ evaluator."""

import random

import pytest
from hypothesis import given, settings
from hypothesis import strategies as st

from repro.db.fact import Fact
from repro.db.instance import DatabaseInstance
from repro.db.semantics import count_homomorphisms, satisfies
from repro.db.yannakakis import (
    is_acyclic_evaluable,
    yannakakis_count_homomorphisms,
    yannakakis_satisfies,
)
from repro.errors import DecompositionError
from repro.queries.builders import (
    branching_tree_query,
    chain_query,
    path_query,
    star_query,
    triangle_query,
)
from repro.queries.parser import parse_query
from repro.workloads.instances import random_instance_for_query


class TestApplicability:
    def test_acyclic_families(self):
        for query in (path_query(4), star_query(3), chain_query(2, 3)):
            assert is_acyclic_evaluable(query)

    def test_cyclic_rejected(self):
        assert not is_acyclic_evaluable(triangle_query())
        with pytest.raises(DecompositionError):
            yannakakis_satisfies(
                DatabaseInstance([Fact("R1", ("a", "b"))]),
                triangle_query(),
            )


class TestBoolean:
    def test_simple_positive(self):
        instance = DatabaseInstance(
            [Fact("R1", ("a", "b")), Fact("R2", ("b", "c"))]
        )
        assert yannakakis_satisfies(instance, path_query(2))

    def test_simple_negative(self):
        instance = DatabaseInstance(
            [Fact("R1", ("a", "b")), Fact("R2", ("c", "d"))]
        )
        assert not yannakakis_satisfies(instance, path_query(2))

    def test_empty_relation(self):
        instance = DatabaseInstance([Fact("R1", ("a", "b"))])
        assert not yannakakis_satisfies(instance, path_query(2))

    def test_repeated_variable(self):
        query = parse_query("R(x, x), S(x, y)")
        yes = DatabaseInstance(
            [Fact("R", ("a", "a")), Fact("S", ("a", "b"))]
        )
        no = DatabaseInstance(
            [Fact("R", ("a", "b")), Fact("S", ("a", "b"))]
        )
        assert yannakakis_satisfies(yes, query)
        assert not yannakakis_satisfies(no, query)

    @given(st.integers(min_value=0, max_value=50_000))
    @settings(max_examples=40, deadline=None)
    def test_matches_backtracking(self, seed):
        rng = random.Random(seed)
        query = rng.choice(
            [
                path_query(2),
                path_query(4),
                star_query(3),
                branching_tree_query(2, 2),
                chain_query(2, 3),
            ]
        )
        instance = random_instance_for_query(
            query,
            domain_size=rng.randint(2, 3),
            facts_per_relation=rng.randint(0, 4),
            seed=seed,
            ensure_satisfiable=rng.random() < 0.5,
        )
        assert yannakakis_satisfies(instance, query) == satisfies(
            instance, query
        )


class TestCounting:
    def test_path_count(self):
        instance = DatabaseInstance(
            [
                Fact("R1", ("a", "b")),
                Fact("R1", ("a", "c")),
                Fact("R2", ("b", "d")),
                Fact("R2", ("c", "d")),
            ]
        )
        assert yannakakis_count_homomorphisms(path_query(2), instance) == 2

    def test_star_cross_product(self):
        facts = [Fact("R1", ("c", f"a{i}")) for i in range(3)]
        facts += [Fact("R2", ("c", f"b{i}")) for i in range(2)]
        assert (
            yannakakis_count_homomorphisms(
                star_query(2), DatabaseInstance(facts)
            )
            == 6
        )

    @given(st.integers(min_value=0, max_value=50_000))
    @settings(max_examples=40, deadline=None)
    def test_matches_backtracking_count(self, seed):
        rng = random.Random(seed)
        query = rng.choice(
            [
                path_query(3),
                star_query(2),
                branching_tree_query(1, 3),
                chain_query(2, 3),
            ]
        )
        instance = random_instance_for_query(
            query,
            domain_size=2,
            facts_per_relation=rng.randint(0, 4),
            seed=seed,
            ensure_satisfiable=False,
        )
        assert yannakakis_count_homomorphisms(
            query, instance
        ) == count_homomorphisms(query, instance)

    def test_scales_beyond_backtracking_comfort(self):
        # A long path over a wide complete layered instance: the count
        # is width^(length+1), huge, but Yannakakis runs in poly time.
        from repro.workloads.graphs import complete_layered_path_instance

        length, width = 10, 4
        instance = complete_layered_path_instance(length, width)
        expected = width ** (length + 1)
        assert (
            yannakakis_count_homomorphisms(path_query(length), instance)
            == expected
        )
