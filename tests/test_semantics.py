"""Unit and property tests for conjunctive-query evaluation."""

import random

from hypothesis import given, settings
from hypothesis import strategies as st

from repro.db.fact import Fact
from repro.db.instance import DatabaseInstance
from repro.db.semantics import (
    count_homomorphisms,
    homomorphisms,
    satisfies,
    witness_sets,
    witnesses_per_atom,
)
from repro.queries.atoms import Variable
from repro.queries.builders import path_query, star_query
from repro.queries.parser import parse_query


class TestSatisfies:
    def test_positive(self, q2, tiny_path_instance):
        assert satisfies(tiny_path_instance, q2)

    def test_negative_missing_join(self):
        d = DatabaseInstance(
            [Fact("R1", ("a", "b")), Fact("R2", ("c", "d"))]
        )
        assert not satisfies(d, path_query(2))

    def test_empty_relation(self):
        d = DatabaseInstance([Fact("R1", ("a", "b"))])
        assert not satisfies(d, path_query(2))

    def test_repeated_variable_atom(self):
        q = parse_query("R(x, x)")
        assert not satisfies(DatabaseInstance([Fact("R", ("a", "b"))]), q)
        assert satisfies(DatabaseInstance([Fact("R", ("a", "a"))]), q)

    def test_self_join_query(self):
        q = parse_query("R(x, y), R(y, z)")
        d = DatabaseInstance([Fact("R", ("a", "b")), Fact("R", ("b", "c"))])
        assert satisfies(d, q)
        # A single edge also works if it loops.
        assert satisfies(DatabaseInstance([Fact("R", ("a", "a"))]), q)
        assert not satisfies(DatabaseInstance([Fact("R", ("a", "b"))]), q)


class TestHomomorphisms:
    def test_counts(self, q2, tiny_path_instance):
        # Paths: a->b->d and a->c->d.
        assert count_homomorphisms(q2, tiny_path_instance) == 2

    def test_assignment_completeness(self, q2, tiny_path_instance):
        for hom in homomorphisms(q2, tiny_path_instance):
            assert set(hom) == set(q2.variables)

    def test_star_cross_product(self):
        facts = [Fact("R1", ("c", f"a{i}")) for i in range(3)]
        facts += [Fact("R2", ("c", f"b{i}")) for i in range(2)]
        d = DatabaseInstance(facts)
        assert count_homomorphisms(star_query(2), d) == 6

    def test_homomorphisms_are_valid(self, tiny_path_instance):
        q = path_query(2)
        for hom in homomorphisms(q, tiny_path_instance):
            for atom in q.atoms:
                image = Fact(
                    atom.relation, tuple(hom[v] for v in atom.args)
                )
                assert image in tiny_path_instance


class TestWitnesses:
    def test_witness_sets(self, q2, tiny_path_instance):
        sets = list(witness_sets(q2, tiny_path_instance))
        assert len(sets) == 2
        assert all(len(s) == 2 for s in sets)

    def test_witnesses_per_atom_bound(self, q2, tiny_path_instance):
        per_atom = witnesses_per_atom(q2, tiny_path_instance)
        # Key Prop-1 observation: at most |D| witnesses per atom.
        for atom, facts in per_atom.items():
            assert len(facts) <= len(tiny_path_instance)
            assert all(f.relation == atom.relation for f in facts)


class TestAgainstNaiveEvaluator:
    """Cross-validate the backtracking evaluator against brute force."""

    @staticmethod
    def _naive_satisfies(query, instance):
        """Try every assignment of variables to the active domain."""
        domain = sorted(instance.active_domain, key=str)
        variables = sorted(query.variables)
        if not domain:
            return False

        def rec(index, partial):
            if index == len(variables):
                return all(
                    Fact(a.relation, tuple(partial[v] for v in a.args))
                    in instance
                    for a in query.atoms
                )
            for value in domain:
                partial[variables[index]] = value
                if rec(index + 1, partial):
                    return True
            del partial[variables[index]]
            return False

        return rec(0, {})

    @given(st.integers(min_value=0, max_value=10_000))
    @settings(max_examples=40, deadline=None)
    def test_matches_naive(self, seed):
        rng = random.Random(seed)
        query = rng.choice(
            [
                path_query(2),
                path_query(3),
                star_query(2),
                parse_query("R(x, y), S(y, x)"),
                parse_query("R(x, x)"),
            ]
        )
        facts = set()
        for atom in query.atoms:
            for _ in range(rng.randint(0, 3)):
                facts.add(
                    Fact(
                        atom.relation,
                        tuple(
                            f"c{rng.randint(0, 2)}"
                            for _ in range(atom.arity)
                        ),
                    )
                )
        instance = (
            DatabaseInstance(facts) if facts else DatabaseInstance(
                [Fact("Z", ("z",))]
            )
        )
        assert satisfies(instance, query) == self._naive_satisfies(
            query, instance
        )
