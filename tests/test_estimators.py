"""Tests for UREstimate (Theorem 3) and PQEEstimate (Theorem 1)."""

import random
from fractions import Fraction

import pytest
from hypothesis import given, settings
from hypothesis import strategies as st

from repro.core.exact import exact_probability, exact_uniform_reliability
from repro.core.pqe_estimate import build_pqe_reduction, pqe_estimate
from repro.core.ur_estimate import ur_estimate
from repro.db.fact import Fact
from repro.db.instance import DatabaseInstance
from repro.db.probabilistic import ProbabilisticDatabase
from repro.queries.builders import path_query, star_query, triangle_query
from repro.workloads.instances import (
    random_instance_for_query,
    random_probabilities,
)

_PROB_POOL = [
    Fraction(0),
    Fraction(1),
    Fraction(1, 2),
    Fraction(1, 3),
    Fraction(2, 3),
    Fraction(3, 4),
    Fraction(1, 5),
    Fraction(5, 7),
]


class TestURExactAutomaton:
    @given(st.integers(min_value=0, max_value=10_000))
    @settings(max_examples=12, deadline=None)
    def test_matches_brute_force(self, seed):
        rng = random.Random(seed)
        query = rng.choice([path_query(2), path_query(3), star_query(2)])
        instance = random_instance_for_query(
            query, domain_size=2, facts_per_relation=3, seed=seed
        )
        if len(instance) > 12:
            return
        truth = exact_uniform_reliability(query, instance, method="enumerate")
        result = ur_estimate(query, instance, method="exact-automaton")
        assert result.estimate == truth
        assert result.exact

    def test_fpras_accuracy(self):
        query = path_query(3)
        instance = random_instance_for_query(
            query, domain_size=3, facts_per_relation=4, seed=7
        )
        truth = exact_uniform_reliability(query, instance, method="lineage")
        result = ur_estimate(
            query, instance, epsilon=0.2, seed=1, repetitions=3
        )
        if truth:
            assert abs(result.estimate - truth) / truth < 0.4

    def test_metadata(self):
        query = path_query(2)
        instance = random_instance_for_query(
            query, domain_size=2, facts_per_relation=2, seed=0
        )
        result = ur_estimate(query, instance, seed=0)
        assert result.nfta_states > 0
        assert result.nfta_transitions > 0
        assert float(result) == result.estimate

    def test_unknown_method(self):
        with pytest.raises(ValueError):
            ur_estimate(
                path_query(1),
                DatabaseInstance([Fact("R1", ("a", "b"))]),
                method="bogus",
            )


class TestPQEReduction:
    @given(st.integers(min_value=0, max_value=10_000))
    @settings(max_examples=12, deadline=None)
    def test_exact_automaton_matches_brute_force(self, seed):
        rng = random.Random(seed)
        query = rng.choice([path_query(2), path_query(3), star_query(2)])
        instance = random_instance_for_query(
            query, domain_size=2, facts_per_relation=2, seed=seed
        )
        if len(instance) > 9:
            return
        pdb = ProbabilisticDatabase(
            {f: rng.choice(_PROB_POOL) for f in instance}
        )
        truth = float(exact_probability(query, pdb, method="enumerate"))
        result = pqe_estimate(query, pdb, method="exact-automaton")
        assert result.estimate == pytest.approx(truth, abs=1e-12)

    def test_triangle_with_probabilities(self):
        query = triangle_query()
        instance = random_instance_for_query(
            query, domain_size=2, facts_per_relation=2, seed=9
        )
        pdb = random_probabilities(instance, seed=2, max_denominator=5)
        truth = float(exact_probability(query, pdb, method="lineage"))
        result = pqe_estimate(query, pdb, method="exact-automaton")
        assert result.estimate == pytest.approx(truth, rel=1e-9)

    def test_uniform_half_has_no_gadgets(self):
        query = path_query(2)
        instance = random_instance_for_query(
            query, domain_size=2, facts_per_relation=2, seed=1
        )
        pdb = ProbabilisticDatabase.uniform(instance)
        reduction = build_pqe_reduction(query, pdb)
        # 1/2 labels: multipliers are all 1, no comparator gadgets.
        assert reduction.tree_size == reduction.ur_reduction.tree_size
        assert reduction.denominator == 2 ** len(instance)

    def test_gadget_size_formula(self):
        query = path_query(1)
        facts = [Fact("R1", ("a", "b")), Fact("R1", ("c", "d"))]
        pdb = ProbabilisticDatabase(
            {facts[0]: Fraction(1, 3), facts[1]: Fraction(5, 8)}
        )
        reduction = build_pqe_reduction(query, pdb)
        # 1/3: max(u(1), u(2)) = 1 bit; 5/8: max(u(5), u(3)) = 3 bits.
        assert (
            reduction.tree_size
            == reduction.ur_reduction.tree_size + 1 + 3
        )
        assert reduction.denominator == 3 * 8

    def test_certain_database_reduces_to_satisfaction(self):
        query = path_query(2)
        instance = random_instance_for_query(
            query, domain_size=2, facts_per_relation=2, seed=3
        )
        pdb = ProbabilisticDatabase.certain(instance)
        result = pqe_estimate(query, pdb, method="exact-automaton")
        assert result.estimate == 1.0

    def test_impossible_database(self):
        query = path_query(2)
        instance = random_instance_for_query(
            query, domain_size=2, facts_per_relation=2, seed=3
        )
        pdb = ProbabilisticDatabase.uniform(instance, 0)
        result = pqe_estimate(query, pdb, method="exact-automaton")
        assert result.estimate == 0.0

    def test_fpras_accuracy(self):
        query = path_query(3)
        instance = random_instance_for_query(
            query, domain_size=2, facts_per_relation=3, seed=4
        )
        pdb = random_probabilities(instance, seed=5, max_denominator=4)
        truth = float(exact_probability(query, pdb, method="lineage"))
        result = pqe_estimate(
            query, pdb, epsilon=0.2, seed=6, repetitions=3
        )
        if truth:
            assert abs(result.estimate - truth) / truth < 0.4

    def test_fpras_pure_sampling_accuracy(self):
        query = path_query(2)
        instance = random_instance_for_query(
            query, domain_size=2, facts_per_relation=3, seed=8
        )
        pdb = random_probabilities(instance, seed=9, max_denominator=3)
        truth = float(exact_probability(query, pdb, method="lineage"))
        result = pqe_estimate(
            query, pdb, epsilon=0.2, seed=10, exact_set_cap=0,
            repetitions=3,
        )
        if truth:
            assert abs(result.estimate - truth) / truth < 0.4
