"""Budget arithmetic at the serving boundary (``-m serve``).

Satellite contract: queue wait is the *request's* time.  The server
deducts it from the request deadline before any engine work
(:meth:`EvaluationBudget.consume_wait`), a request whose deadline
expired in the queue is rejected without touching the engine, and
rejected requests leave no trace in the request journal.
"""

import pytest

from repro.core.budget import EvaluationBudget
from repro.core.journal import load_request_journal
from repro.db.fact import Fact
from repro.db.probabilistic import ProbabilisticDatabase
from repro.errors import BudgetExceededError, ReproError
from repro.serve import PQEServer, ServerConfig
from repro.serve.admission import AdmissionTicket

pytestmark = pytest.mark.serve

BASE = "Q :- R(x), S(x, y), T(y)"


@pytest.fixture
def pdb() -> ProbabilisticDatabase:
    return ProbabilisticDatabase({
        Fact("R", ("a",)): "1/2",
        Fact("S", ("a", "b")): "1/2",
        Fact("T", ("b",)): "1/2",
    })


def stub_queue_wait(server, waited: float) -> None:
    """Make admission report ``waited`` seconds of queueing without
    actually sleeping (the arithmetic is the subject under test)."""
    server.admission.admit = lambda deadline=None: AdmissionTicket(
        queue_seconds=waited, queue_fraction=0.0
    )


class TestConsumeWait:
    def test_wait_is_deducted_from_the_deadline(self):
        budget = EvaluationBudget(deadline=2.0, max_work_units=100)
        remaining = budget.consume_wait(0.5)
        assert remaining.deadline == pytest.approx(1.5)
        # Non-deadline limits ride along untouched.
        assert remaining.max_work_units == 100

    def test_expired_wait_raises_deadline_kind(self):
        budget = EvaluationBudget(deadline=0.5)
        with pytest.raises(BudgetExceededError) as info:
            budget.consume_wait(0.5)
        assert info.value.kind == "deadline"
        with pytest.raises(BudgetExceededError):
            budget.consume_wait(1.0)

    def test_no_deadline_passes_through(self):
        budget = EvaluationBudget(max_work_units=10)
        assert budget.consume_wait(100.0) is budget

    def test_negative_wait_is_an_error(self):
        with pytest.raises(ReproError):
            EvaluationBudget(deadline=1.0).consume_wait(-0.1)


class TestServingBoundary:
    def test_queue_wait_charged_against_request_deadline(self, pdb):
        # 0.4s queued against a 10s deadline: admitted and answered,
        # with the wait reported on the response.
        server = PQEServer(pdb, ServerConfig())
        stub_queue_wait(server, 0.4)
        status, body = server.handle(
            {"query": BASE, "deadline": 10.0}
        )
        assert status == 200 and body["ok"]
        assert body["queue_seconds"] == pytest.approx(0.4)

    def test_expired_request_rejected_before_engine_work(self, pdb):
        server = PQEServer(pdb, ServerConfig())
        stub_queue_wait(server, 0.75)
        status, body = server.handle(
            {"query": BASE, "deadline": 0.5}
        )
        assert status == 504
        assert body["rejected"] is True
        assert body["reason"] == "deadline_expired"
        counters = server.telemetry.metrics.counters
        assert counters["serve.rejected.deadline_expired"] == 1
        # No evaluation happened: nothing settled, nothing shed,
        # no latency sample polluting the shedder.
        assert server.stats()["settled"] == 0
        assert "serve.ok" not in counters
        assert server.shedder.snapshot()["samples"] == 0

    def test_rejections_emit_no_journal_records(self, pdb, tmp_path):
        journal = str(tmp_path / "requests.wal")
        server = PQEServer(pdb, ServerConfig(journal=journal))
        stub_queue_wait(server, 0.75)
        status, _ = server.handle({"query": BASE, "deadline": 0.5})
        assert status == 504
        server.drain(reason="test")
        loaded = load_request_journal(journal)
        assert loaded.requests == {}
        assert loaded.header is not None  # the header alone

    def test_default_deadline_applies_when_request_omits_one(self, pdb):
        server = PQEServer(
            pdb, ServerConfig(default_deadline=0.5)
        )
        stub_queue_wait(server, 0.75)
        status, body = server.handle({"query": BASE})
        assert status == 504
        assert body["reason"] == "deadline_expired"

    def test_deadline_free_requests_never_expire_in_queue(self, pdb):
        server = PQEServer(pdb, ServerConfig())
        stub_queue_wait(server, 1e6)
        status, body = server.handle({"query": BASE})
        assert status == 200 and body["ok"]
