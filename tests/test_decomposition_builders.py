"""Tests for GYO join trees, width search, completion, and transforms."""

import pytest

from repro.decomposition import (
    decompose,
    generalized_hypertree_width,
    ghd_by_search,
    gyo_reduction,
    is_acyclic,
    join_tree_decomposition,
    make_complete,
)
from repro.decomposition.search import cover_bags, primal_graph
from repro.decomposition.transform import (
    binarize,
    ensure_construction_ready,
    reroot,
)
from repro.errors import DecompositionError, WidthExceededError
from repro.queries.atoms import Variable
from repro.queries.builders import (
    branching_tree_query,
    chain_query,
    cycle_query,
    path_query,
    star_query,
    triangle_query,
)
from repro.queries.parser import parse_query


class TestGYO:
    @pytest.mark.parametrize(
        "query",
        [
            path_query(1),
            path_query(5),
            star_query(4),
            branching_tree_query(2, 2),
            chain_query(3, arity=3),
            parse_query("R(x, y), S(y, x)"),  # 2-cycle is acyclic
        ],
    )
    def test_acyclic_families(self, query):
        assert is_acyclic(query)

    @pytest.mark.parametrize(
        "query", [triangle_query(), cycle_query(4), cycle_query(5)]
    )
    def test_cyclic_families(self, query):
        assert not is_acyclic(query)

    def test_gyo_parents_form_tree(self):
        parents, acyclic = gyo_reduction(path_query(4))
        assert acyclic
        roots = [a for a, p in parents.items() if p is None]
        assert len(roots) == 1

    def test_join_tree_is_valid_width1(self):
        for query in (path_query(4), star_query(3), chain_query(2, 3)):
            d = join_tree_decomposition(query)
            report = d.validate()
            assert report.is_hd and report.complete
            assert d.width == 1

    def test_join_tree_rejects_cyclic(self):
        with pytest.raises(DecompositionError):
            join_tree_decomposition(triangle_query())


class TestSearch:
    def test_primal_graph_triangle(self):
        adjacency = primal_graph(triangle_query())
        assert all(len(neighbours) == 2 for neighbours in adjacency.values())

    def test_triangle_width_2(self):
        assert generalized_hypertree_width(triangle_query()) == 2

    def test_cycle4_width_2(self):
        assert generalized_hypertree_width(cycle_query(4)) == 2

    def test_acyclic_width_1(self):
        assert generalized_hypertree_width(path_query(6)) == 1

    def test_search_result_is_generalized_hd(self):
        d = ghd_by_search(triangle_query())
        assert d.validate().is_generalized_hd

    def test_max_width_enforced(self):
        with pytest.raises(WidthExceededError):
            ghd_by_search(triangle_query(), max_width=1)

    def test_cover_bags_uncoverable(self):
        q = parse_query("R(x, y)")
        bags = [frozenset({Variable("x"), Variable("w")})]
        assert cover_bags(q, bags) is None

    def test_large_query_uses_heuristic(self):
        # > 8 variables triggers the min-fill path; still valid.
        q = cycle_query(10)
        d = ghd_by_search(q)
        assert d.validate().is_generalized_hd
        assert d.width <= 3


class TestCompletion:
    def test_already_complete_returned_unchanged(self):
        d = join_tree_decomposition(path_query(3))
        assert make_complete(d) is d

    def test_completion_adds_covering_vertices(self):
        d = ghd_by_search(triangle_query())
        completed = make_complete(d)
        report = completed.validate()
        assert report.complete
        assert completed.width == d.width


class TestDecomposeFacade:
    @pytest.mark.parametrize(
        "query",
        [
            path_query(1),
            path_query(4),
            star_query(5),
            triangle_query(),
            cycle_query(4),
            chain_query(3, 3),
            branching_tree_query(2, 2),
        ],
    )
    def test_always_usable(self, query):
        d = decompose(query)
        assert d.validate().usable_for_construction

    def test_width_cap(self):
        with pytest.raises(WidthExceededError):
            decompose(triangle_query(), max_width=1)


class TestTransforms:
    def test_reroot_identity(self):
        d = decompose(path_query(3))
        assert reroot(d, 0) is d

    def test_reroot_preserves_ghd(self):
        d = decompose(path_query(4))
        for new_root in range(len(d.nodes)):
            rerooted = reroot(d, new_root)
            report = rerooted.validate()
            assert report.is_generalized_hd and report.complete
            assert rerooted.width == d.width

    def test_reroot_bad_id(self):
        with pytest.raises(DecompositionError):
            reroot(decompose(path_query(2)), 99)

    def test_binarize_caps_fanout(self):
        d = decompose(star_query(6))
        binarized = binarize(d)
        assert all(
            len(binarized.children_map[n.node_id]) <= 2
            for n in binarized.nodes
        )
        assert binarized.validate().is_generalized_hd
        assert binarized.width == d.width

    def test_binarize_noop_when_small(self):
        d = decompose(path_query(3))
        assert binarize(d) is d

    def test_binarize_preserves_minimal_covering(self):
        d = decompose(star_query(5))
        binarized = binarize(d)
        # Every atom still has a minimal covering vertex.
        assert set(binarized.minimal_covering_vertex) == set(
            d.query.atoms
        )

    def test_ensure_construction_ready(self):
        for query in (path_query(3), star_query(5), triangle_query()):
            ready = ensure_construction_ready(decompose(query))
            assert any(
                ready.root.covers(a) for a in query.atoms
            )
            assert all(
                len(ready.children_map[n.node_id]) <= 2
                for n in ready.nodes
            )
