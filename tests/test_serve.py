"""The serve tier (``-m serve``): admission, shedding, breaker, drain.

Unit tests for the serving primitives plus integration tests that
drive :meth:`PQEServer.handle` — the full request path minus HTTP —
in-process.  Socket-level coverage lives in ``test_serve_http.py``;
the overload/chaos acceptance scenarios in ``test_serve_overload.py``.
"""

import threading
import time

import pytest

from repro.db.fact import Fact
from repro.db.probabilistic import ProbabilisticDatabase
from repro.errors import (
    DeadlineRejection,
    DrainingRejection,
    QueueFullRejection,
    ReproError,
)
from repro.serve import (
    AdmissionController,
    ArtifactRegistry,
    CircuitBreaker,
    LoadShedder,
    PQEServer,
    ServerConfig,
)
from repro.serve.breaker import CLOSED, HALF_OPEN, OPEN
from repro.testing.faults import FaultSpec, inject_faults

pytestmark = pytest.mark.serve

#: The classic non-hierarchical query (#P-hard exactly): its auto
#: ladder runs the full reduction chain, with small instances still
#: answered exactly from lineage.
BASE = "Q :- R(x), S(x, y), T(y)"
#: Self-join: unsafe, exercises the Karp–Luby / reduction chain.
SELF_JOIN = "Q :- P(x, y), P(y, z)"


@pytest.fixture
def pdb() -> ProbabilisticDatabase:
    return ProbabilisticDatabase({
        Fact("R", ("a",)): "1/2",
        Fact("R", ("b",)): "1/3",
        Fact("S", ("a", "b")): "1/2",
        Fact("S", ("b", "c")): "2/3",
        Fact("T", ("b",)): "1/2",
        Fact("T", ("c",)): "1/3",
        Fact("P", ("a", "b")): "1/2",
        Fact("P", ("b", "c")): "2/3",
    })


def make_server(pdb, **overrides) -> PQEServer:
    return PQEServer(pdb, ServerConfig(**overrides))


# ---------------------------------------------------------------------------
# AdmissionController


class FakeClock:
    def __init__(self):
        self.now = 0.0

    def __call__(self):
        return self.now


class TestAdmission:
    def test_admits_up_to_concurrency_without_queueing(self):
        admission = AdmissionController(max_concurrency=2, max_queue=4)
        first = admission.admit()
        second = admission.admit()
        assert first.queue_seconds == pytest.approx(0.0, abs=0.05)
        assert second.queue_fraction == 0.0
        admission.release()
        admission.release()

    def test_queue_full_rejects_immediately(self):
        admission = AdmissionController(max_concurrency=1, max_queue=0)
        admission.admit()
        with pytest.raises(QueueFullRejection):
            admission.admit()
        admission.release()

    def test_queued_waiter_admitted_on_release_and_charged(self):
        admission = AdmissionController(max_concurrency=1, max_queue=2)
        admission.admit()
        tickets = []

        def waiter():
            tickets.append(admission.admit())

        thread = threading.Thread(target=waiter)
        thread.start()
        # The waiter is queued, not rejected.
        deadline = time.monotonic() + 5
        while admission.snapshot()["waiting"] != 1:
            assert time.monotonic() < deadline
            time.sleep(0.005)
        time.sleep(0.05)
        admission.release()
        thread.join(timeout=5)
        assert tickets and tickets[0].queue_seconds >= 0.05
        admission.release()

    def test_deadline_expires_in_queue(self):
        admission = AdmissionController(max_concurrency=1, max_queue=2)
        admission.admit()
        started = time.monotonic()
        with pytest.raises(DeadlineRejection) as info:
            admission.admit(deadline=0.1)
        assert time.monotonic() - started >= 0.1
        assert info.value.elapsed >= 0.1
        admission.release()

    def test_drain_rejects_new_arrivals_and_queued_waiters(self):
        admission = AdmissionController(max_concurrency=1, max_queue=2)
        admission.admit()
        outcomes = []

        def waiter():
            try:
                admission.admit()
                outcomes.append("admitted")
            except DrainingRejection:
                outcomes.append("draining")

        thread = threading.Thread(target=waiter)
        thread.start()
        deadline = time.monotonic() + 5
        while admission.snapshot()["waiting"] != 1:
            assert time.monotonic() < deadline
            time.sleep(0.005)
        admission.begin_drain()
        thread.join(timeout=5)
        assert outcomes == ["draining"]
        with pytest.raises(DrainingRejection):
            admission.admit()
        # The in-flight slot survives the drain until released.
        assert not admission.await_idle(timeout=0.05)
        admission.release()
        assert admission.await_idle(timeout=5)

    def test_queue_fraction(self):
        admission = AdmissionController(max_concurrency=1, max_queue=4)
        assert admission.queue_fraction == 0.0
        zero_queue = AdmissionController(max_concurrency=1, max_queue=0)
        assert zero_queue.queue_fraction == 0.0

    def test_validation(self):
        with pytest.raises(ReproError):
            AdmissionController(max_concurrency=0)
        with pytest.raises(ReproError):
            AdmissionController(max_queue=-1)


# ---------------------------------------------------------------------------
# LoadShedder


class TestShedding:
    def test_no_pressure_no_shed(self):
        shedder = LoadShedder(target_p95=0.5)
        decision = shedder.decide(queue_fraction=0.0)
        assert decision.rung == 0
        assert not decision.shed
        assert decision.pressure == 0.0

    def test_queue_occupancy_alone_sheds(self):
        shedder = LoadShedder(thresholds=(0.5, 0.75, 0.9))
        assert shedder.decide(0.4).rung == 0
        assert shedder.decide(0.5).rung == 1
        assert shedder.decide(0.8).rung == 2
        assert shedder.decide(1.0).rung == 3

    def test_latency_history_alone_sheds(self):
        shedder = LoadShedder(target_p95=0.1, ewma_alpha=1.0)
        shedder.observe(0.1)
        assert shedder.decide(0.0).rung == 0  # at target: no pressure
        for _ in range(3):
            shedder.observe(0.3)  # p95 at 3x target -> pressure 2.0
        decision = shedder.decide(0.0)
        assert decision.pressure == pytest.approx(2.0)
        assert decision.rung == 3

    def test_ewma_and_window(self):
        shedder = LoadShedder(target_p95=1.0, ewma_alpha=0.5, window=2)
        shedder.observe(1.0)
        assert shedder.p95_ewma == pytest.approx(0.5)
        shedder.observe(1.0)
        assert shedder.p95_ewma == pytest.approx(0.75)
        # Window of 2: the old samples age out as new ones arrive.
        shedder.observe(0.0)
        shedder.observe(0.0)
        assert shedder.snapshot()["samples"] == 2

    def test_validation(self):
        with pytest.raises(ReproError):
            LoadShedder(target_p95=0.0)
        with pytest.raises(ReproError):
            LoadShedder(thresholds=())
        with pytest.raises(ReproError):
            LoadShedder(thresholds=(0.9, 0.5))
        with pytest.raises(ReproError):
            LoadShedder(ewma_alpha=0.0)
        with pytest.raises(ReproError):
            LoadShedder(window=0)


# ---------------------------------------------------------------------------
# CircuitBreaker


class TestBreaker:
    def test_opens_at_threshold(self):
        clock = FakeClock()
        breaker = CircuitBreaker(threshold=3, clock=clock)
        assert breaker.allow("q") is True
        breaker.record_crash("q")
        breaker.record_crash("q")
        assert breaker.state("q") == CLOSED
        assert breaker.allow("q") is True
        breaker.record_crash("q")
        assert breaker.state("q") == OPEN
        assert breaker.allow("q") is False

    def test_cooldown_admits_one_probe(self):
        clock = FakeClock()
        breaker = CircuitBreaker(
            threshold=1, cooldown=10.0, clock=clock
        )
        breaker.record_crash("q")
        assert breaker.allow("q") is False
        clock.now = 10.0
        assert breaker.allow("q") is True       # the probe
        assert breaker.state("q") == HALF_OPEN
        assert breaker.allow("q") is False      # concurrent: rejected
        breaker.record_success("q")
        assert breaker.state("q") == CLOSED
        assert breaker.allow("q") is True

    def test_probe_crash_reopens_for_fresh_cooldown(self):
        clock = FakeClock()
        breaker = CircuitBreaker(
            threshold=1, cooldown=10.0, clock=clock
        )
        breaker.record_crash("q")
        clock.now = 10.0
        assert breaker.allow("q") is True
        breaker.record_crash("q")               # probe died too
        assert breaker.state("q") == OPEN
        clock.now = 19.0
        assert breaker.allow("q") is False      # fresh cooldown
        clock.now = 20.0
        assert breaker.allow("q") is True

    def test_crash_window_slides(self):
        clock = FakeClock()
        breaker = CircuitBreaker(
            threshold=2, window=60.0, clock=clock
        )
        breaker.record_crash("q")
        clock.now = 61.0                        # first crash aged out
        breaker.record_crash("q")
        assert breaker.state("q") == CLOSED

    def test_tokens_are_independent(self):
        breaker = CircuitBreaker(threshold=1, clock=FakeClock())
        breaker.record_crash("bad")
        assert breaker.allow("bad") is False
        assert breaker.allow("good") is True
        assert breaker.snapshot() == {"bad": OPEN}

    def test_validation(self):
        with pytest.raises(ReproError):
            CircuitBreaker(threshold=0)
        with pytest.raises(ReproError):
            CircuitBreaker(window=0)
        with pytest.raises(ReproError):
            CircuitBreaker(cooldown=0)


# ---------------------------------------------------------------------------
# ArtifactRegistry


class TestRegistry:
    def test_delta_isolates_per_request_traffic(self):
        registry = ArtifactRegistry(maxsize=8)
        registry.cache.get_or_build("k1", lambda: "v1")
        first = registry.delta()
        assert (first.hits, first.misses) == (0, 1)
        registry.cache.get_or_build("k1", lambda: "v1")
        second = registry.delta()
        assert (second.hits, second.misses) == (1, 0)
        third = registry.delta()
        assert (third.hits, third.misses) == (0, 0)

    def test_disk_tier_appears_in_snapshot(self, tmp_path):
        registry = ArtifactRegistry(disk=str(tmp_path / "cache"))
        snapshot = registry.snapshot()
        assert snapshot["disk"]["records"] == 0
        assert ArtifactRegistry().snapshot().get("disk") is None


# ---------------------------------------------------------------------------
# PQEServer.handle — the request path in-process


class TestHandle:
    def test_success_body_shape(self, pdb):
        server = make_server(pdb)
        status, body = server.handle({"query": BASE})
        assert status == 200
        assert body["ok"] is True
        assert body["method"] == "lifted-exact" or body["exact"]
        assert body["ladder_rung"] == 0
        assert body["shed"] is False
        assert body["degradations"] == []
        assert body["trace_id"] == "req-000001"
        assert body["replayed"] is False
        assert body["rational"] is not None

    def test_repeat_requests_are_bitwise_identical(self, pdb):
        server = make_server(pdb, epsilon=0.5)
        _, first = server.handle(
            {"query": SELF_JOIN, "method": "karp-luby"}
        )
        _, second = server.handle(
            {"query": SELF_JOIN, "method": "karp-luby"}
        )
        assert first["ok"] and second["ok"]
        # Content-derived seeds: same request, same stream, same value.
        assert second["seed"] == first["seed"]
        assert second["value"] == first["value"]

    def test_repeat_fpras_request_hits_the_warm_registry(self, pdb):
        server = make_server(pdb, epsilon=0.5)
        _, first = server.handle(
            {"query": BASE, "method": "fpras"}
        )
        _, second = server.handle(
            {"query": BASE, "method": "fpras"}
        )
        assert first["registry"]["misses"] > 0
        assert second["registry"]["misses"] == 0
        assert second["registry"]["hits"] > 0
        counters = server.telemetry.metrics.counters
        assert counters["serve.registry.hits"] > 0

    @pytest.mark.parametrize("payload, match", [
        ("not a dict", "JSON object"),
        ({}, "JSON object"),
        ({"query": BASE, "bogus": 1}, "unknown request fields"),
        ({"query": BASE, "task": "nope"}, "unknown task"),
        ({"query": BASE, "method": 7}, "method must be a string"),
        ({"query": BASE, "deadline": -1}, "deadline must be > 0"),
        ({"query": BASE, "seed": "x"}, "seed must be an integer"),
        ({"query": "not a query"}, ""),
    ])
    def test_bad_requests_are_400s(self, pdb, payload, match):
        server = make_server(pdb)
        status, body = server.handle(payload)
        assert status == 400
        assert body["rejected"] is True
        assert body["reason"] == "bad_request"
        assert match in body["message"]

    def test_reliability_task(self, pdb):
        server = make_server(pdb)
        status, body = server.handle(
            {"query": BASE, "task": "reliability"}
        )
        assert status == 200 and body["ok"]

    def test_shed_request_reports_rung_and_widened_epsilon(self, pdb):
        server = make_server(pdb, shed_target_p95=0.1)
        # Feed the latency history until the pressure signal alone
        # (queue empty) clears every threshold.
        for _ in range(4):
            server.shedder.observe(1.0)
        status, body = server.handle({"query": BASE})
        assert status == 200 and body["ok"]
        assert body["shed"] is True
        assert body["ladder_rung"] >= 1
        assert body["epsilon"] > server.engine.epsilon
        assert body["pressure"] > 0
        counters = server.telemetry.metrics.counters
        assert counters["serve.shed"] == 1

    def test_shed_epsilon_honours_the_policy_cap(self, pdb):
        server = make_server(pdb, shed_target_p95=0.01, epsilon=0.3)
        for _ in range(8):
            server.shedder.observe(5.0)
        _, body = server.handle({"query": BASE})
        assert body["epsilon"] <= server.policy.epsilon_max

    def test_persistent_failure_is_a_structured_500(self, pdb):
        server = make_server(pdb)
        with inject_faults(FaultSpec("monte_carlo.sample")):
            status, body = server.handle(
                {"query": BASE, "method": "monte-carlo"}
            )
        assert status == 500
        assert body["ok"] is False
        assert body["rejected"] is False
        assert body["error"]["exception"] == "EstimationError"
        assert body["error"]["phase"]
        assert server.telemetry.metrics.counters["serve.errors"] == 1

    def test_transient_failure_degrades_not_500(self, pdb):
        server = make_server(pdb, epsilon=0.5)
        with inject_faults(FaultSpec("lineage.karp_luby", times=1)):
            status, body = server.handle(
                {"query": SELF_JOIN, "method": "karp-luby"}
            )
        assert status == 200 and body["ok"]
        assert body["degradations"] or body["retries"] > 0

    def test_serving_layer_fault_is_contained(self, pdb):
        server = make_server(pdb)
        with inject_faults(FaultSpec("serve.request")):
            status, body = server.handle({"query": BASE})
        assert status == 500
        assert body["error"]["phase"] == "serve.request"
        # The slot was released despite the fault.
        assert server.admission.snapshot()["running"] == 0

    def test_explicit_seed_wins_over_derived(self, pdb):
        server = make_server(pdb, epsilon=0.5)
        _, body = server.handle(
            {"query": BASE, "method": "fpras", "seed": 99}
        )
        assert body["seed"] == 99


class TestBreakerIntegration:
    def test_repeated_crashes_quarantine_the_query(self, pdb):
        server = make_server(pdb, breaker_threshold=2)
        key = server._request_key(
            *server._parse({"query": BASE})[:3],
            server._parse({"query": BASE})[4],
        )
        server.breaker.record_crash(key)
        server.breaker.record_crash(key)
        status, body = server.handle({"query": BASE})
        assert status == 503
        assert body["reason"] == "quarantined"
        # Other queries are unaffected.
        status, body = server.handle(
            {"query": BASE, "task": "reliability"}
        )
        assert status == 200


class TestDrain:
    def test_drain_closes_admission_and_is_idempotent(self, pdb):
        server = make_server(pdb)
        assert server.handle({"query": BASE})[0] == 200
        assert server.drain(reason="test") is True
        assert server.drain(reason="again") is True  # idempotent
        status, body = server.handle({"query": BASE})
        assert status == 503
        assert body["reason"] == "draining"
        assert server.stats()["draining"] is True
        assert server.telemetry.metrics.counters["serve.drains"] == 1

    def test_drain_writes_the_trace(self, pdb, tmp_path):
        trace = tmp_path / "serve-trace.jsonl"
        server = make_server(pdb, trace=str(trace))
        server.handle({"query": BASE})
        server.drain(reason="test")
        from repro.obs.export import read_trace, summarize_trace

        with open(trace, encoding="utf-8") as stream:
            summary = summarize_trace(read_trace(stream))
        assert summary["meta"]["kind"] == "serve"
        assert summary["meta"]["reason"] == "test"
        assert summary["meta"]["settled"] == 1
        assert summary["counters"]["serve.ok"] == 1

    def test_max_requests_auto_drains(self, pdb):
        server = make_server(pdb, max_requests=2)
        server.handle({"query": BASE})
        server.handle({"query": BASE, "task": "reliability"})
        server.serve_until_drained()
        assert server.stats()["draining"] is True


class TestRequestJournalReplay:
    def test_restart_replays_full_fidelity_answers(self, pdb, tmp_path):
        journal = str(tmp_path / "requests.wal")
        first = make_server(pdb, epsilon=0.5, journal=journal)
        _, original = first.handle(
            {"query": BASE, "method": "fpras"}
        )
        assert original["ok"]
        first.drain(reason="restart")

        second = make_server(pdb, epsilon=0.5, journal=journal)
        status, replayed = second.handle(
            {"query": BASE, "method": "fpras"}
        )
        assert status == 200
        assert replayed["replayed"] is True
        assert replayed["value"] == original["value"]
        assert replayed["seed"] == original["seed"]
        counters = second.telemetry.metrics.counters
        assert counters["serve.replays"] == 1
        # A different request still evaluates live.
        status, live = second.handle(
            {"query": BASE, "task": "reliability"}
        )
        assert status == 200 and live["replayed"] is False

    def test_shed_answers_are_never_journalled(self, pdb, tmp_path):
        journal = str(tmp_path / "requests.wal")
        server = make_server(
            pdb, journal=journal, shed_target_p95=0.01
        )
        for _ in range(8):
            server.shedder.observe(5.0)
        _, body = server.handle({"query": BASE})
        assert body["ok"] and body["shed"]
        server.drain(reason="test")

        fresh = make_server(pdb, journal=journal, shed_target_p95=0.01)
        assert fresh._replayable == {}

    def test_fingerprint_mismatch_refuses_the_journal(
        self, pdb, tmp_path
    ):
        from repro.errors import JournalError

        journal = str(tmp_path / "requests.wal")
        server = make_server(pdb, epsilon=0.5, journal=journal)
        server.handle({"query": BASE, "method": "fpras"})
        server.drain(reason="test")
        with pytest.raises(JournalError, match="fingerprint"):
            make_server(pdb, epsilon=0.25, journal=journal)


class TestConfig:
    def test_unknown_isolation_is_rejected(self, pdb):
        with pytest.raises(ReproError, match="isolation"):
            make_server(pdb, isolation="fibers")

    def test_stats_shape(self, pdb):
        server = make_server(pdb)
        server.handle({"query": BASE})
        stats = server.stats()
        assert stats["settled"] == 1
        assert stats["admission"]["running"] == 0
        assert "p95_ewma" in stats["shedder"]
        assert stats["breaker"] == {}
        assert "hits" in stats["registry"]


# ---------------------------------------------------------------------------
# POST /delta: the mutation path


def reweight_payload(relation="P", constants=("a", "b"), prob="1/9"):
    return {
        "ops": [
            {
                "op": "reweight",
                "relation": relation,
                "constants": list(constants),
                "probability": prob,
            }
        ]
    }


class TestDeltaEndpoint:
    def test_delta_applies_and_serves_the_new_version(self, pdb):
        server = make_server(pdb, epsilon=0.5)
        _, before = server.handle({"query": SELF_JOIN, "method": "karp-luby"})
        status, body = server.handle_delta(reweight_payload())
        assert status == 200
        assert body["ok"] and body["version"] == 1
        assert body["touched"] == ["P"]
        assert server.stats()["database"]["version"] == 1
        # Admission reopened after the barrier.
        assert not server.admission.draining
        _, after = server.handle({"query": SELF_JOIN, "method": "karp-luby"})
        assert after["ok"]
        assert after["value"] != before["value"]

    def test_malformed_and_conflicting_deltas_are_structured(self, pdb):
        server = make_server(pdb)
        status, body = server.handle_delta({"ops": []})
        assert status == 400 and body["reason"] == "bad_request"
        status, body = server.handle_delta({"nope": 1})
        assert status == 400
        status, body = server.handle_delta(
            {"ops": [{"op": "upsert", "relation": "P",
                      "constants": ["a", "b"]}]}
        )
        assert status == 400
        # Deleting a fact that is not there: a 409, head untouched.
        status, body = server.handle_delta(
            {"ops": [{"op": "delete", "relation": "P",
                      "constants": ["zz", "zz"]}]}
        )
        assert status == 409 and body["reason"] == "delta_conflict"
        assert server.versioned.version == 0

    def test_barrier_timeout_aborts_before_the_commit_point(
        self, pdb, tmp_path
    ):
        wal = str(tmp_path / "deltas.wal")
        server = make_server(
            pdb, drain_deadline=0.1, delta_journal=wal
        )
        server.admission.admit()          # a request that never settles
        try:
            status, body = server.handle_delta(reweight_payload())
        finally:
            server.admission.release()
        assert status == 503 and body["reason"] == "delta_barrier"
        assert server.versioned.version == 0
        # Nothing was journalled: a fresh recovery sees zero versions.
        from repro.db.delta import load_delta_journal

        assert len(load_delta_journal(wal)) == 0
        # Admission reopened; the daemon still serves.
        status, body = server.handle({"query": BASE})
        assert status == 200

    def test_draining_daemon_refuses_mutations(self, pdb):
        server = make_server(pdb)
        server.admission.begin_drain()
        status, body = server.handle_delta(reweight_payload())
        assert status == 503 and body["reason"] == "draining"

    def test_delta_journal_restores_the_version_chain(
        self, pdb, tmp_path
    ):
        wal = str(tmp_path / "deltas.wal")
        first = make_server(pdb, delta_journal=wal)
        status, _ = first.handle_delta(reweight_payload())
        assert status == 200
        head = first.versioned.cache_token
        first.drain(reason="restart")

        second = make_server(pdb, delta_journal=wal)
        assert second.versioned.version == 1
        assert second.versioned.recovered == 1
        assert second.versioned.cache_token == head
        assert second.stats()["database"]["recovered"] == 1


class TestDeltaReplayEligibility:
    def test_untouched_replays_touched_recomputes(self, pdb, tmp_path):
        journal = str(tmp_path / "requests.wal")
        first = make_server(pdb, epsilon=0.5, journal=journal)
        _, base_answer = first.handle(
            {"query": BASE, "method": "fpras"}
        )
        _, join_answer = first.handle(
            {"query": SELF_JOIN, "method": "karp-luby"}
        )
        assert base_answer["ok"] and join_answer["ok"]
        first.drain(reason="restart")

        second = make_server(pdb, epsilon=0.5, journal=journal)
        status, body = second.handle_delta(reweight_payload())
        assert status == 200
        counters = second.telemetry.metrics.counters
        # The P-dependent record was dropped by the journal hook; the
        # R/S/T record survived.
        assert counters["delta.invalidated.journal"] == 1
        assert counters["delta.survived"] >= 1

        status, replayed = second.handle(
            {"query": BASE, "method": "fpras"}
        )
        assert status == 200 and replayed["replayed"] is True
        assert replayed["value"] == base_answer["value"]

        status, live = second.handle(
            {"query": SELF_JOIN, "method": "karp-luby"}
        )
        assert status == 200 and live["replayed"] is False
        assert live["value"] != join_answer["value"]

    def test_restart_on_a_mutated_chain_prunes_stale_records(
        self, pdb, tmp_path
    ):
        journal = str(tmp_path / "requests.wal")
        deltas = str(tmp_path / "deltas.wal")
        first = make_server(
            pdb, epsilon=0.5, journal=journal, delta_journal=deltas
        )
        _, base_answer = first.handle(
            {"query": BASE, "method": "fpras"}
        )
        _, join_answer = first.handle(
            {"query": SELF_JOIN, "method": "karp-luby"}
        )
        first.drain(reason="restart")

        # Mutate the chain *offline* (no server running): the next
        # daemon recovers version 1 and must not replay the stale
        # P-dependent answer.
        from repro.db.delta import (
            Delta,
            DeltaOp,
            VersionedDatabase,
        )

        offline = VersionedDatabase(pdb, journal=deltas)
        offline.apply(
            Delta([DeltaOp.reweight(Fact("P", ("a", "b")), "1/9")])
        )
        offline.close()

        second = make_server(
            pdb, epsilon=0.5, journal=journal, delta_journal=deltas
        )
        assert second.versioned.version == 1
        status, replayed = second.handle(
            {"query": BASE, "method": "fpras"}
        )
        assert status == 200 and replayed["replayed"] is True
        assert replayed["value"] == base_answer["value"]
        status, live = second.handle(
            {"query": SELF_JOIN, "method": "karp-luby"}
        )
        assert status == 200 and live["replayed"] is False
        counters = second.telemetry.metrics.counters
        assert counters["serve.replay_stale"] == 1
