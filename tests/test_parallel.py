"""Batch evaluation and the shared reduction cache.

Covers the contracts documented in :mod:`repro.core.parallel` and
:mod:`repro.core.cache`:

- bitwise determinism of a seeded batch across ``max_workers`` settings,
  including items whose counts are genuinely sampled (seed-dependent);
- equivalence with a sequential per-item engine loop, method-for-method;
- thread-scheduling-independent cache hit/miss accounting, including
  the build deduplication and the ``cache_if`` (exact-counts-only)
  storage predicate;
- worker failures surfacing as :class:`EstimationError` naming the item.
"""

import threading

import pytest

from repro.core.cache import CacheStats, ReductionCache
from repro.core.estimator import PQEEngine
from repro.core.parallel import (
    BatchItem,
    derive_item_seed,
    evaluate_batch,
)
from repro.db.fact import Fact
from repro.db.instance import DatabaseInstance
from repro.db.probabilistic import ProbabilisticDatabase
from repro.errors import EstimationError, ReproError
from repro.queries.parser import parse_query

QUERY = parse_query("Q :- R1(x, y), R2(y, z)")

# Two facts: every counting group stays exact (seed-independent).
SMALL_PDB = ProbabilisticDatabase({
    Fact("R1", ("a", "b")): "1/2",
    Fact("R2", ("b", "c")): "2/3",
})

# Two derivations through d: with exact_set_cap=0 the counter samples,
# so estimates genuinely depend on the per-item seed.
DIAMOND_PDB = ProbabilisticDatabase({
    Fact("R1", ("a", "b")): "1/2",
    Fact("R1", ("a", "c")): "2/3",
    Fact("R2", ("b", "d")): "3/4",
    Fact("R2", ("c", "d")): "2/5",
})

WIDTHS = (1, 2, 8)


def small_items(n):
    return [BatchItem(QUERY, SMALL_PDB, method="fpras-weighted")] * n


def sampled_engine():
    return PQEEngine(epsilon=0.5, exact_set_cap=0)


# ---------------------------------------------------------------------
# Determinism across worker counts
# ---------------------------------------------------------------------

def test_batch_bitwise_identical_across_worker_counts():
    engine = sampled_engine()
    items = [BatchItem(QUERY, DIAMOND_PDB, method="fpras-weighted")] * 4
    batches = [
        evaluate_batch(engine, items, max_workers=width, seed=7)
        for width in WIDTHS
    ]
    # The workload really is randomized (else this test is vacuous) …
    assert not any(answer.exact for answer in batches[0].answers)
    # … and each item draws from its own stream.
    assert len(set(batches[0].values)) == len(items)
    for batch in batches[1:]:
        assert batch.values == batches[0].values
        assert batch.methods == batches[0].methods


def test_batch_matches_sequential_engine_loop():
    engine = sampled_engine()
    items = [
        BatchItem(QUERY, DIAMOND_PDB, method="fpras-weighted"),
        BatchItem(QUERY, SMALL_PDB, method="fpras-weighted"),
        BatchItem(QUERY, SMALL_PDB, method="auto"),
        BatchItem(QUERY, DIAMOND_PDB.instance, task="reliability"),
    ]
    batch = evaluate_batch(engine, items, max_workers=8, seed=3)
    for index, item in enumerate(items):
        item_seed = derive_item_seed(3, index)
        if item.task == "reliability":
            expected = engine.uniform_reliability(
                item.query, item.database, method=item.method,
                seed=item_seed,
            )
        else:
            expected = engine.probability(
                item.query, item.database, method=item.method,
                seed=item_seed,
            )
        assert batch.results[index].answer.value == expected.value
        assert batch.results[index].answer.method == expected.method


def test_derive_item_seed_is_stable_and_spread():
    assert derive_item_seed(None, 5) is None
    assert derive_item_seed(7, 0) == derive_item_seed(7, 0)
    seeds = {derive_item_seed(7, index) for index in range(100)}
    assert len(seeds) == 100
    assert derive_item_seed(7, 0) != derive_item_seed(8, 0)


# ---------------------------------------------------------------------
# Cache accounting
# ---------------------------------------------------------------------

def test_cache_accounting_is_scheduling_independent():
    # 6 identical exact items: builder misses pqe + ghd + count once,
    # every other item hits pqe + count.
    engine = PQEEngine(epsilon=0.25)
    for width in WIDTHS:
        batch = evaluate_batch(
            engine, small_items(6), max_workers=width, seed=11
        )
        assert batch.cache_stats.misses == 3
        assert batch.cache_stats.hits == 10
        assert batch.cache_stats.hit_rate == pytest.approx(10 / 13)


def test_sampled_counts_are_never_shared():
    # Non-exact counts are seed-dependent, so the count layer must miss
    # once per item; only the reduction layers are shared.
    engine = sampled_engine()
    items = [BatchItem(QUERY, DIAMOND_PDB, method="fpras-weighted")] * 3
    for width in WIDTHS:
        batch = evaluate_batch(engine, items, max_workers=width, seed=5)
        # pqe: 1 miss + 2 hits; ghd: 1 miss; count: 3 misses.
        assert batch.cache_stats.misses == 5
        assert batch.cache_stats.hits == 2
        assert len(set(batch.values)) == 3


def test_long_lived_cache_spans_batches_but_stats_do_not():
    cache = ReductionCache()
    engine = PQEEngine(epsilon=0.25, cache=cache)
    first = engine.evaluate_batch(small_items(2), max_workers=1, seed=1)
    assert first.cache_stats.misses == 3
    second = engine.evaluate_batch(small_items(2), max_workers=1, seed=1)
    # Everything is warm now, and per-batch stats are deltas.
    assert second.cache_stats.misses == 0
    assert second.cache_stats.hits == 4
    assert cache.stats.lookups == (
        first.cache_stats.lookups + second.cache_stats.lookups
    )


def test_cached_batch_values_equal_uncached_values():
    items = [
        BatchItem(QUERY, DIAMOND_PDB, method="fpras-weighted"),
        BatchItem(QUERY, SMALL_PDB, method="fpras-weighted"),
    ] * 2
    engine = sampled_engine()
    warm = ReductionCache()
    engine.evaluate_batch(items, max_workers=1, seed=9, cache=warm)
    cached = engine.evaluate_batch(items, max_workers=1, seed=9, cache=warm)
    fresh = engine.evaluate_batch(items, max_workers=1, seed=9)
    assert cached.values == fresh.values


# ---------------------------------------------------------------------
# ReductionCache unit behavior
# ---------------------------------------------------------------------

def test_concurrent_builds_deduplicate():
    cache = ReductionCache()
    builds = []
    gate = threading.Event()

    def builder():
        builds.append(1)
        gate.wait(timeout=5)
        return "value"

    def request():
        return cache.get_or_build("key", builder)

    threads = [threading.Thread(target=request) for _ in range(8)]
    for thread in threads:
        thread.start()
    gate.set()
    for thread in threads:
        thread.join()
    assert len(builds) == 1
    assert cache.stats.misses == 1
    assert cache.stats.hits == 7


def test_cache_if_rejected_values_stay_private():
    cache = ReductionCache()
    results = [
        cache.get_or_build("key", lambda i=i: i, cache_if=lambda _: False)
        for i in range(4)
    ]
    # Every caller ran its own builder and got its own value back.
    assert results == [0, 1, 2, 3]
    assert "key" not in cache
    assert cache.stats.misses == 4
    assert cache.stats.hits == 0
    # An accepted value is then shared as usual.
    assert cache.get_or_build("key", lambda: "kept") == "kept"
    assert cache.get_or_build("key", lambda: "ignored") == "kept"


def test_builder_exception_leaves_key_absent():
    cache = ReductionCache()
    with pytest.raises(ValueError):
        cache.get_or_build("key", lambda: (_ for _ in ()).throw(ValueError))
    assert "key" not in cache
    assert cache.get_or_build("key", lambda: 42) == 42


def test_lru_eviction_and_stats_arithmetic():
    cache = ReductionCache(maxsize=2)
    cache.get_or_build("a", lambda: 1)
    cache.get_or_build("b", lambda: 2)
    cache.get_or_build("a", lambda: 1)      # refresh a
    cache.get_or_build("c", lambda: 3)      # evicts b
    assert "a" in cache and "c" in cache and "b" not in cache
    assert cache.stats.evictions == 1
    delta = cache.stats - CacheStats(hits=1, misses=3, evictions=1)
    assert delta == CacheStats(hits=0, misses=0, evictions=0)
    assert CacheStats().hit_rate == 0.0
    with pytest.raises(ReproError):
        ReductionCache(maxsize=0)


# ---------------------------------------------------------------------
# Failure and validation contracts
# ---------------------------------------------------------------------

def test_worker_failure_surfaces_as_estimation_error():
    engine = PQEEngine()
    items = [
        BatchItem(QUERY, SMALL_PDB),
        BatchItem(QUERY, SMALL_PDB, method="not-a-method"),
    ]
    for width in (1, 4):
        with pytest.raises(EstimationError, match="batch item 1"):
            evaluate_batch(engine, items, max_workers=width, seed=0)


def test_failure_chains_the_original_exception():
    engine = PQEEngine()
    try:
        evaluate_batch(
            engine,
            [BatchItem(QUERY, SMALL_PDB, method="not-a-method")],
            seed=0,
        )
    except EstimationError as failure:
        assert isinstance(failure.__cause__, ReproError)
    else:  # pragma: no cover
        pytest.fail("expected EstimationError")


def test_item_validation():
    with pytest.raises(ReproError, match="unknown task"):
        evaluate_batch(PQEEngine(), [BatchItem(QUERY, SMALL_PDB, task="x")])
    with pytest.raises(ReproError, match="needs a ProbabilisticDatabase"):
        evaluate_batch(
            PQEEngine(),
            [BatchItem(QUERY, SMALL_PDB.instance, task="probability")],
        )
    with pytest.raises(ReproError, match="expected BatchItem"):
        evaluate_batch(PQEEngine(), [QUERY])
    with pytest.raises(ReproError, match="max_workers"):
        evaluate_batch(PQEEngine(), small_items(2), max_workers=0)


def test_tuple_items_and_task_inference():
    engine = PQEEngine()
    instance = DatabaseInstance(
        [Fact("R1", ("a", "b")), Fact("R2", ("b", "c"))]
    )
    batch = evaluate_batch(
        engine, [(QUERY, SMALL_PDB), (QUERY, instance)], seed=0
    )
    assert batch.results[0].answer.value == pytest.approx(1 / 3)
    assert batch.results[1].answer.value == 1.0  # UR(Q, D) = 1 world


def test_engine_seed_is_the_default_batch_seed():
    engine = sampled_engine()
    items = [BatchItem(QUERY, DIAMOND_PDB, method="fpras-weighted")] * 2
    seeded = PQEEngine(epsilon=0.5, exact_set_cap=0, seed=21)
    assert (
        seeded.evaluate_batch(items).values
        == engine.evaluate_batch(items, seed=21).values
    )
