"""Unit and property tests for probabilistic databases."""

from fractions import Fraction

import pytest
from hypothesis import given, settings
from hypothesis import strategies as st

from repro.db.fact import Fact
from repro.db.instance import DatabaseInstance
from repro.db.probabilistic import ProbabilisticDatabase
from repro.errors import ProbabilityError
from repro.queries.parser import parse_query


def _facts(n):
    return [Fact("R", (f"c{i}",)) for i in range(n)]


class TestConstruction:
    def test_accepts_fraction_strings(self):
        pdb = ProbabilisticDatabase({_facts(1)[0]: "3/7"})
        assert pdb.probability(_facts(1)[0]) == Fraction(3, 7)

    def test_accepts_ints(self):
        pdb = ProbabilisticDatabase({_facts(1)[0]: 1})
        assert pdb.probability(_facts(1)[0]) == 1

    def test_rejects_out_of_range(self):
        with pytest.raises(ProbabilityError):
            ProbabilisticDatabase({_facts(1)[0]: "3/2"})
        with pytest.raises(ProbabilityError):
            ProbabilisticDatabase({_facts(1)[0]: -1})

    def test_rejects_non_rational(self):
        with pytest.raises(ProbabilityError):
            ProbabilisticDatabase({_facts(1)[0]: "garbage"})

    def test_unknown_fact_lookup(self):
        pdb = ProbabilisticDatabase.uniform(_facts(2))
        with pytest.raises(ProbabilityError):
            pdb.probability(Fact("R", ("nope",)))

    def test_uniform_and_certain(self):
        facts = _facts(3)
        assert all(
            ProbabilisticDatabase.uniform(facts).probability(f)
            == Fraction(1, 2)
            for f in facts
        )
        assert all(
            ProbabilisticDatabase.certain(facts).probability(f) == 1
            for f in facts
        )


class TestSizeAndDenominator:
    def test_denominator_product(self):
        facts = _facts(3)
        pdb = ProbabilisticDatabase(
            {facts[0]: "1/2", facts[1]: "1/3", facts[2]: "3/4"}
        )
        assert pdb.denominator_product == 2 * 3 * 4

    def test_size_includes_bit_encoding(self):
        facts = _facts(1)
        small = ProbabilisticDatabase({facts[0]: "1/2"})
        large = ProbabilisticDatabase({facts[0]: "12345/99999"})
        assert large.size > small.size


class TestSubinstanceProbability:
    def test_simple_product(self):
        facts = _facts(2)
        pdb = ProbabilisticDatabase({facts[0]: "1/2", facts[1]: "1/3"})
        assert pdb.subinstance_probability([facts[0]]) == Fraction(1, 2) * (
            1 - Fraction(1, 3)
        )

    def test_unknown_fact_rejected(self):
        pdb = ProbabilisticDatabase.uniform(_facts(1))
        with pytest.raises(ProbabilityError):
            pdb.subinstance_probability([Fact("S", ("x",))])

    @given(
        st.lists(
            st.fractions(min_value=0, max_value=1, max_denominator=6),
            min_size=1,
            max_size=6,
        )
    )
    @settings(max_examples=30, deadline=None)
    def test_distribution_sums_to_one(self, probs):
        facts = _facts(len(probs))
        pdb = ProbabilisticDatabase(dict(zip(facts, probs)))
        total = sum(
            pdb.subinstance_probability(sub)
            for sub in pdb.instance.subinstances()
        )
        assert total == 1


class TestTransforms:
    def test_project_to_query(self):
        pdb = ProbabilisticDatabase(
            {Fact("R", ("a", "b")): "1/2", Fact("T", ("z",)): "1/3"}
        )
        projected = pdb.project_to_query(parse_query("R(x, y)"))
        assert len(projected) == 1

    def test_conditioned_present(self):
        facts = _facts(2)
        pdb = ProbabilisticDatabase({facts[0]: "1/2", facts[1]: "1/3"})
        conditioned = pdb.conditioned(facts[0], present=True)
        assert conditioned.probability(facts[0]) == 1
        assert len(conditioned) == 2

    def test_conditioned_absent(self):
        facts = _facts(2)
        pdb = ProbabilisticDatabase({facts[0]: "1/2", facts[1]: "1/3"})
        conditioned = pdb.conditioned(facts[0], present=False)
        assert len(conditioned) == 1

    def test_conditioned_unknown_fact(self):
        pdb = ProbabilisticDatabase.uniform(_facts(1))
        with pytest.raises(ProbabilityError):
            pdb.conditioned(Fact("S", ("x",)), present=True)

    def test_shannon_expansion_identity(self):
        # Pr(D') marginalises correctly under conditioning.
        facts = _facts(3)
        pdb = ProbabilisticDatabase(
            {facts[0]: "1/2", facts[1]: "2/3", facts[2]: "1/5"}
        )
        pivot = facts[0]
        p = pdb.probability(pivot)
        target = frozenset({facts[1]})
        lhs = pdb.subinstance_probability(target)
        rhs = (1 - p) * pdb.conditioned(
            pivot, present=False
        ).subinstance_probability(target)
        # pivot absent in target, so only the absent branch contributes.
        assert lhs == rhs
