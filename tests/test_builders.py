"""Unit tests for the query-family builders."""

import pytest

from repro.errors import QueryError
from repro.queries.builders import (
    branching_tree_query,
    chain_query,
    cycle_query,
    hierarchical_star_query,
    path_query,
    star_query,
    triangle_query,
)
from repro.queries.properties import is_hierarchical, is_path_query


class TestPathQuery:
    @pytest.mark.parametrize("n", [1, 2, 3, 5, 10])
    def test_length(self, n):
        assert len(path_query(n)) == n

    def test_shape(self):
        q = path_query(3)
        assert str(q) == "Q :- R1(x1, x2), R2(x2, x3), R3(x3, x4)"

    def test_self_join_free(self):
        assert path_query(7).is_self_join_free

    def test_is_path(self):
        assert is_path_query(path_query(4))

    def test_3path_class_non_hierarchical(self):
        # Corollary 1: every member of 3Path is non-hierarchical.
        for i in range(3, 9):
            assert not is_hierarchical(path_query(i))

    def test_short_paths_are_hierarchical(self):
        assert is_hierarchical(path_query(1))
        assert is_hierarchical(path_query(2))

    def test_invalid_length(self):
        with pytest.raises(QueryError):
            path_query(0)

    def test_custom_prefix(self):
        q = path_query(2, relation_prefix="E")
        assert q.relation_names == ("E1", "E2")


class TestStarQuery:
    @pytest.mark.parametrize("arms", [1, 2, 3, 6])
    def test_length(self, arms):
        assert len(star_query(arms)) == arms

    def test_hierarchical(self):
        assert is_hierarchical(star_query(4))

    def test_shared_centre(self):
        q = star_query(3)
        centres = [a.args[0] for a in q.atoms]
        assert len(set(centres)) == 1

    def test_invalid(self):
        with pytest.raises(QueryError):
            star_query(0)


class TestHierarchicalStar:
    def test_has_unary_root(self):
        q = hierarchical_star_query(2)
        assert q.atoms[0].relation == "U"
        assert q.atoms[0].arity == 1

    def test_hierarchical(self):
        assert is_hierarchical(hierarchical_star_query(3))


class TestCycleAndTriangle:
    def test_cycle_closes(self):
        q = cycle_query(4)
        assert q.atoms[-1].args[1] == q.atoms[0].args[0]

    def test_triangle_is_cycle3(self):
        assert triangle_query() == cycle_query(3)

    def test_cycle_not_path(self):
        assert not is_path_query(cycle_query(3))

    def test_invalid(self):
        with pytest.raises(QueryError):
            cycle_query(1)


class TestTreeQuery:
    def test_atom_count(self):
        # depth 2, fanout 2: 2 + 4 = 6 edges
        assert len(branching_tree_query(2, 2)) == 6

    def test_self_join_free(self):
        assert branching_tree_query(2, 3).is_self_join_free

    def test_invalid(self):
        with pytest.raises(QueryError):
            branching_tree_query(0)


class TestChainQuery:
    def test_overlap(self):
        q = chain_query(2, arity=3)
        first_vars = set(q.atoms[0].variables)
        second_vars = set(q.atoms[1].variables)
        assert len(first_vars & second_vars) == 2

    def test_arity(self):
        assert all(a.arity == 4 for a in chain_query(3, arity=4).atoms)

    def test_invalid(self):
        with pytest.raises(QueryError):
            chain_query(1, arity=1)
