"""White-box tests for the decomposition search machinery."""

import random

from hypothesis import given, settings
from hypothesis import strategies as st

from repro.decomposition.search import (
    _bags_for_order,
    _min_fill_order,
    cover_bags,
    primal_graph,
)
from repro.queries.atoms import Variable
from repro.queries.builders import (
    cycle_query,
    path_query,
    star_query,
    triangle_query,
)


def _elimination_orders(query, rng, count=3):
    variables = sorted(primal_graph(query), key=str)
    for _ in range(count):
        order = variables[:]
        rng.shuffle(order)
        yield order


class TestBagsForOrder:
    @given(st.integers(min_value=0, max_value=10_000))
    @settings(max_examples=25, deadline=None)
    def test_tree_decomposition_properties(self, seed):
        rng = random.Random(seed)
        query = rng.choice(
            [path_query(4), star_query(3), triangle_query(), cycle_query(4)]
        )
        adjacency = primal_graph(query)
        for order in _elimination_orders(query, rng):
            bags, parents = _bags_for_order(adjacency, order)
            # Tree shape: parents precede children (topological ids).
            assert parents[0] == -1
            for index, parent in enumerate(parents[1:], start=1):
                assert 0 <= parent < index

            # Vertex coverage: every query variable is in some bag.
            covered = set()
            for bag in bags:
                covered |= bag
            assert covered == set(query.variables)

            # Edge coverage: every primal edge lies inside some bag.
            for left, neighbours in adjacency.items():
                for right in neighbours:
                    assert any(
                        left in bag and right in bag for bag in bags
                    ), (left, right)

            # Running intersection (condition 2): bags containing any
            # given variable form a connected subtree.
            for variable in query.variables:
                holding = [
                    i for i, bag in enumerate(bags) if variable in bag
                ]
                local_roots = sum(
                    1
                    for i in holding
                    if parents[i] not in holding
                )
                assert local_roots == 1, variable


class TestMinFill:
    def test_order_is_permutation(self):
        adjacency = primal_graph(cycle_query(5))
        order = _min_fill_order(adjacency)
        assert sorted(order, key=str) == sorted(adjacency, key=str)

    def test_path_needs_no_fill(self):
        # Min-fill on a path graph should produce width-1 bags.
        adjacency = primal_graph(path_query(6))
        order = _min_fill_order(adjacency)
        bags, _parents = _bags_for_order(adjacency, order)
        assert max(len(bag) for bag in bags) == 2


class TestCoverBags:
    def test_minimum_cover_sizes(self):
        query = triangle_query()
        bags = [frozenset(query.variables)]  # all three variables
        covers = cover_bags(query, bags)
        assert covers is not None
        assert len(covers[0]) == 2  # two binary atoms cover a triangle

    def test_single_atom_cover_preferred(self):
        query = path_query(2)
        bags = [frozenset(query.atoms[0].variables)]
        covers = cover_bags(query, bags)
        assert covers is not None
        assert len(covers[0]) == 1

    def test_uncoverable_bag(self):
        query = path_query(2)
        bags = [frozenset({Variable("not_in_query")})]
        assert cover_bags(query, bags) is None
