"""Unit tests for the ConjunctiveQuery class."""

import pytest

from repro.errors import QueryError
from repro.queries.atoms import make_atom
from repro.queries.cq import ConjunctiveQuery
from repro.queries.atoms import Variable


def _rs():
    return ConjunctiveQuery([make_atom("R", "x", "y"), make_atom("S", "y", "z")])


class TestConstruction:
    def test_length(self):
        assert len(_rs()) == 2

    def test_empty_rejected(self):
        with pytest.raises(QueryError):
            ConjunctiveQuery([])

    def test_duplicate_atoms_rejected(self):
        atom = make_atom("R", "x", "y")
        with pytest.raises(QueryError):
            ConjunctiveQuery([atom, atom])

    def test_atom_order_preserved(self):
        q = _rs()
        assert [a.relation for a in q.atoms] == ["R", "S"]


class TestProperties:
    def test_variables(self):
        assert _rs().variables == frozenset(
            {Variable("x"), Variable("y"), Variable("z")}
        )

    def test_self_join_free_true(self):
        assert _rs().is_self_join_free

    def test_self_join_free_false(self):
        q = ConjunctiveQuery(
            [make_atom("R", "x", "y"), make_atom("R", "y", "z")]
        )
        assert not q.is_self_join_free

    def test_relation_names(self):
        assert _rs().relation_names == ("R", "S")

    def test_atom_for_relation(self):
        q = _rs()
        assert q.atom_for_relation("R") == make_atom("R", "x", "y")

    def test_atom_for_missing_relation(self):
        with pytest.raises(QueryError):
            _rs().atom_for_relation("T")

    def test_atom_for_relation_with_self_join(self):
        q = ConjunctiveQuery(
            [make_atom("R", "x", "y"), make_atom("R", "y", "z")]
        )
        with pytest.raises(QueryError):
            q.atom_for_relation("R")

    def test_atoms_with_variable(self):
        q = _rs()
        assert len(q.atoms_with_variable(Variable("y"))) == 2
        assert len(q.atoms_with_variable(Variable("x"))) == 1
        assert q.atoms_with_variable(Variable("w")) == ()


class TestEquality:
    def test_order_insensitive_equality(self):
        a = make_atom("R", "x", "y")
        b = make_atom("S", "y", "z")
        assert ConjunctiveQuery([a, b]) == ConjunctiveQuery([b, a])

    def test_hash_consistent_with_equality(self):
        a = make_atom("R", "x", "y")
        b = make_atom("S", "y", "z")
        assert hash(ConjunctiveQuery([a, b])) == hash(ConjunctiveQuery([b, a]))

    def test_inequality(self):
        assert _rs() != ConjunctiveQuery([make_atom("R", "x", "y")])

    def test_str(self):
        assert str(_rs()) == "Q :- R(x, y), S(y, z)"

    def test_contains(self):
        q = _rs()
        assert make_atom("R", "x", "y") in q
        assert make_atom("T", "x") not in q
