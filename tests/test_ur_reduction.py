"""Tests for the Proposition 1 construction (query + DB → augmented NFTA).

The central invariant: the translated NFTA accepts exactly UR(Q, D')
trees of the reported size, across every query family the paper covers.
"""

import random

import pytest
from hypothesis import given, settings
from hypothesis import strategies as st

from repro.automata.nfta_counting import count_nfta_exact
from repro.automata.symbols import Literal, PAD
from repro.core.exact import exact_uniform_reliability
from repro.core.ur_reduction import build_ur_reduction
from repro.db.fact import Fact
from repro.db.instance import DatabaseInstance
from repro.errors import QueryError, SelfJoinError
from repro.queries.builders import (
    branching_tree_query,
    chain_query,
    cycle_query,
    path_query,
    star_query,
    triangle_query,
)
from repro.queries.parser import parse_query
from repro.workloads.instances import random_instance_for_query


def _check_bijection(query, instance):
    reduction = build_ur_reduction(query, instance)
    automaton = count_nfta_exact(reduction.nfta, reduction.tree_size)
    truth = exact_uniform_reliability(query, instance, method="enumerate")
    assert automaton * reduction.scale == truth, (
        f"query={query} |D|={len(instance)}: automaton gives "
        f"{automaton * reduction.scale}, brute force {truth}"
    )
    return reduction


class TestValidation:
    def test_rejects_self_join(self):
        q = parse_query("R(x, y), R(y, z)")
        with pytest.raises(SelfJoinError):
            build_ur_reduction(
                q, DatabaseInstance([Fact("R", ("a", "b"))])
            )

    def test_rejects_mismatched_decomposition(self):
        from repro.decomposition import decompose

        d = decompose(path_query(2))
        with pytest.raises(QueryError):
            build_ur_reduction(
                path_query(3),
                DatabaseInstance([Fact("R1", ("a", "b"))]),
                decomposition=d,
            )

    def test_rejects_unknown_contract_mode(self):
        with pytest.raises(QueryError):
            build_ur_reduction(
                path_query(1),
                DatabaseInstance([Fact("R1", ("a", "b"))]),
                contract_mode="nope",
            )


class TestBijectionByFamily:
    @given(st.integers(min_value=0, max_value=10_000))
    @settings(max_examples=15, deadline=None)
    def test_path_queries(self, seed):
        rng = random.Random(seed)
        length = rng.choice([1, 2, 3])
        query = path_query(length)
        instance = random_instance_for_query(
            query, domain_size=3, facts_per_relation=3, seed=seed
        )
        if len(instance) <= 12:
            _check_bijection(query, instance)

    @given(st.integers(min_value=0, max_value=10_000))
    @settings(max_examples=10, deadline=None)
    def test_star_queries(self, seed):
        rng = random.Random(seed)
        arms = rng.choice([2, 3, 4])
        query = star_query(arms)
        instance = random_instance_for_query(
            query, domain_size=2, facts_per_relation=3, seed=seed
        )
        if len(instance) <= 12:
            _check_bijection(query, instance)

    @given(st.integers(min_value=0, max_value=10_000))
    @settings(max_examples=8, deadline=None)
    def test_triangle_width2(self, seed):
        query = triangle_query()
        instance = random_instance_for_query(
            query, domain_size=2, facts_per_relation=3, seed=seed
        )
        if len(instance) <= 11:
            _check_bijection(query, instance)

    def test_branching_tree(self):
        query = branching_tree_query(2, 2)
        instance = random_instance_for_query(
            query, domain_size=2, facts_per_relation=1, seed=3
        )
        if len(instance) <= 12:
            _check_bijection(query, instance)

    def test_ternary_chain(self):
        query = chain_query(2, arity=3)
        instance = random_instance_for_query(
            query, domain_size=2, facts_per_relation=3, seed=1
        )
        if len(instance) <= 12:
            _check_bijection(query, instance)

    def test_four_cycle(self):
        query = cycle_query(4)
        instance = random_instance_for_query(
            query, domain_size=2, facts_per_relation=2, seed=2
        )
        if len(instance) <= 12:
            _check_bijection(query, instance)

    def test_single_atom(self):
        query = path_query(1)
        instance = DatabaseInstance(
            [Fact("R1", ("a", "b")), Fact("R1", ("c", "d"))]
        )
        # UR = subsets containing at least one fact = 3.
        reduction = _check_bijection(query, instance)
        assert reduction.tree_size == 2


class TestEdgeCases:
    def test_empty_relation_zero(self):
        query = path_query(2)
        instance = DatabaseInstance([Fact("R1", ("a", "b"))])
        reduction = build_ur_reduction(query, instance)
        assert count_nfta_exact(reduction.nfta, reduction.tree_size) == 0

    def test_projection_scaling(self):
        query = path_query(1)
        instance = DatabaseInstance(
            [Fact("R1", ("a", "b")), Fact("Noise", ("z",))]
        )
        reduction = _check_bijection(query, instance)
        assert reduction.dropped_facts == 1
        assert reduction.scale == 2

    def test_repeated_variable_atom(self):
        query = parse_query("R(x, x), S(x, y)")
        instance = DatabaseInstance(
            [
                Fact("R", ("a", "a")),
                Fact("R", ("a", "b")),
                Fact("S", ("a", "c")),
                Fact("S", ("b", "c")),
            ]
        )
        _check_bijection(query, instance)


class TestContractModes:
    def test_pad_and_lambda_agree(self):
        # Star query whose join tree gets binarised: both contract modes
        # must produce the same UR count (at their respective sizes).
        query = star_query(3)
        instance = random_instance_for_query(
            query, domain_size=2, facts_per_relation=2, seed=4
        )
        pad = build_ur_reduction(query, instance, contract_mode="pad")
        lam = build_ur_reduction(query, instance, contract_mode="lambda")
        count_pad = count_nfta_exact(pad.nfta, pad.tree_size)
        count_lam = count_nfta_exact(lam.nfta, lam.tree_size)
        assert count_pad == count_lam
        assert lam.pad_count == 0
        assert lam.tree_size == len(lam.projected_instance)

    def test_pad_symbols_in_language(self):
        query = triangle_query()
        instance = random_instance_for_query(
            query, domain_size=2, facts_per_relation=2, seed=0
        )
        reduction = build_ur_reduction(query, instance)
        if reduction.pad_count:
            assert PAD in reduction.nfta.alphabet

    def test_tree_size_accounting(self):
        query = star_query(4)
        instance = random_instance_for_query(
            query, domain_size=2, facts_per_relation=2, seed=5
        )
        reduction = build_ur_reduction(query, instance)
        assert reduction.tree_size == len(
            reduction.projected_instance
        ) + reduction.pad_count


class TestAutomatonShape:
    def test_alphabet_is_literals_and_pad(self):
        query = path_query(2)
        instance = random_instance_for_query(
            query, domain_size=2, facts_per_relation=2, seed=6
        )
        reduction = build_ur_reduction(query, instance)
        for symbol in reduction.nfta.alphabet:
            assert isinstance(symbol, Literal) or symbol is PAD

    def test_polynomial_growth_in_query_length(self):
        sizes = []
        for length in (2, 4, 6):
            query = path_query(length)
            instance = random_instance_for_query(
                query, domain_size=2, facts_per_relation=3, seed=1
            )
            reduction = build_ur_reduction(query, instance)
            sizes.append(reduction.nfta.num_transitions)
        assert sizes[2] < 10 * sizes[0]


class TestForcedBinarization:
    def test_high_fanout_decomposition_end_to_end(self):
        """A hand-built fanout-3 decomposition must be binarised into
        copies (PAD vertices) and still count UR exactly."""
        from repro.decomposition.hypertree import (
            HypertreeDecomposition,
            HypertreeNode,
        )

        query = star_query(4)
        atoms = query.atoms
        # Root covers atom 0; three children cover atoms 1..3 directly,
        # giving the root fanout 3.
        nodes = [
            HypertreeNode(0, atoms[0].variables, (atoms[0],)),
            HypertreeNode(1, atoms[1].variables, (atoms[1],)),
            HypertreeNode(2, atoms[2].variables, (atoms[2],)),
            HypertreeNode(3, atoms[3].variables, (atoms[3],)),
        ]
        decomposition = HypertreeDecomposition(
            query, nodes, [-1, 0, 0, 0]
        )
        assert decomposition.validate().usable_for_construction

        instance = random_instance_for_query(
            query, domain_size=2, facts_per_relation=2, seed=11
        )
        reduction = build_ur_reduction(
            query, instance, decomposition=decomposition
        )
        # Binarisation must have introduced at least one PAD copy.
        assert reduction.pad_count >= 1
        automaton = count_nfta_exact(reduction.nfta, reduction.tree_size)
        truth = exact_uniform_reliability(
            query, instance, method="enumerate"
        )
        assert automaton * reduction.scale == truth
