"""Golden regression corpus: frozen exact answers for 20 workloads.

``tests/golden/corpus.json`` pins the exact probability ``Pr_H(Q)``
(as a ``p/q`` rational string) and the exact uniform reliability
``UR(Q, D)`` for 20 deterministic (query, instance) pairs built from
:mod:`repro.workloads` — path, star, warehouse, and mixed-arity shapes
with rational probability labels.  Any change anywhere in the pipeline
that shifts one of these values — parser, reduction, decomposition,
lineage, counting kernels — fails here with a precise diff.

The frozen quantities are exact rationals, which are sums over
subinstances and therefore independent of iteration order, hash seed,
worker count, and kernel backend — so this file is stable across
machines and ``PYTHONHASHSEED`` values by construction.

Refreshing after an *intentional* semantic change::

    PYTHONPATH=src python -m pytest tests/test_golden_corpus.py \
        --update-golden

rewrites ``corpus.json`` from the current implementation; review the
diff like any other code change.
"""

from __future__ import annotations

import json
import pathlib
from fractions import Fraction

import pytest

from repro.core.exact import exact_probability, exact_uniform_reliability
from repro.core.kernels import vectorized_available
from repro.core.pqe_estimate import pqe_estimate
from repro.queries.builders import path_query, star_query, triangle_query
from repro.queries.parser import parse_query
from repro.workloads import (
    random_instance_for_query,
    random_probabilities,
    warehouse_instance,
    warehouse_query,
)

GOLDEN_PATH = pathlib.Path(__file__).parent / "golden" / "corpus.json"

#: Cases small enough that the Theorem 1 exact-weighted automaton route
#: is cheap; these cross-check the frozen value through the *entire*
#: reduction + counting-kernel pipeline on both backends.
AUTOMATON_CHECKED = frozenset({
    "path2-a", "path2-b", "star2-a", "rs-a", "rs-b", "mixed-a",
})


def _corpus_cases():
    """The 20 deterministic (name, query, pdb, instance) pairs."""
    cases = []

    def add(name, query, seed, domain_size=2, facts=3, max_denominator=5):
        instance = random_instance_for_query(
            query, domain_size=domain_size, facts_per_relation=facts,
            seed=seed,
        )
        pdb = random_probabilities(
            instance, seed=seed, max_denominator=max_denominator
        )
        cases.append((name, query, pdb, instance))

    rs = parse_query("Q :- R(x, y), S(y, z)")
    mixed = parse_query("Q :- R(x), S(x, y), T(y, x)")
    selfjoin = parse_query("Q :- E(x, y), E(y, z)")

    add("path2-a", path_query(2), seed=101)
    add("path2-b", path_query(2), seed=102, domain_size=3, facts=4)
    add("path3-a", path_query(3), seed=103)
    add("path3-b", path_query(3), seed=104, domain_size=3, facts=4)
    add("star2-a", star_query(2), seed=105)
    add("star2-b", star_query(2), seed=106, domain_size=3, facts=4)
    add("star3-a", star_query(3), seed=107)
    add("star3-b", star_query(3), seed=108, domain_size=3, facts=3)
    add("rs-a", rs, seed=109)
    add("rs-b", rs, seed=110, domain_size=3, facts=4)
    add("mixed-a", mixed, seed=111)
    add("mixed-b", mixed, seed=112, domain_size=3, facts=4)
    add("triangle-a", triangle_query(), seed=113)
    add("triangle-b", triangle_query(), seed=114, domain_size=3, facts=4)
    add("selfjoin-a", selfjoin, seed=115)
    add("selfjoin-b", selfjoin, seed=116, domain_size=3, facts=4)
    add("path4-a", path_query(4), seed=117)
    add("star2-c", star_query(2), seed=118, domain_size=2, facts=4,
        max_denominator=8)
    for seed in (119, 120):
        pdb = warehouse_instance(
            customers=3, products=3, sales=4, seed=seed
        )
        cases.append(
            (f"warehouse-{seed}", warehouse_query(), pdb, pdb.instance)
        )
    return cases


def _evaluate(query, pdb, instance) -> dict:
    return {
        "query": str(query),
        "facts": len(instance),
        "probability": str(exact_probability(query, pdb, method="lineage")),
        "uniform_reliability": str(
            exact_uniform_reliability(query, instance, method="lineage")
        ),
    }


def _current_corpus() -> dict:
    return {
        name: _evaluate(query, pdb, instance)
        for name, query, pdb, instance in _corpus_cases()
    }


def test_corpus_has_twenty_pairs():
    assert len(_corpus_cases()) == 20


def test_golden_corpus_matches(update_golden):
    current = _current_corpus()
    if update_golden:
        GOLDEN_PATH.parent.mkdir(exist_ok=True)
        GOLDEN_PATH.write_text(
            json.dumps(current, indent=2, sort_keys=True) + "\n",
            encoding="utf-8",
        )
    assert GOLDEN_PATH.exists(), (
        "tests/golden/corpus.json is missing; generate it with "
        "pytest tests/test_golden_corpus.py --update-golden"
    )
    frozen = json.loads(GOLDEN_PATH.read_text(encoding="utf-8"))
    assert current == frozen, (
        "exact answers drifted from tests/golden/corpus.json; if the "
        "change is intentional, refresh with --update-golden and review "
        "the diff"
    )


@pytest.mark.parametrize(
    "backend",
    [
        "reference",
        "optimized",
        pytest.param(
            "vectorized",
            marks=pytest.mark.skipif(
                not vectorized_available(), reason="numpy not installed"
            ),
        ),
    ],
)
def test_golden_values_through_the_automaton_route(backend):
    """The frozen lineage values re-derived end to end through the
    Theorem 1 reduction and the exact-weighted counting kernels."""
    frozen = json.loads(GOLDEN_PATH.read_text(encoding="utf-8"))
    checked = 0
    for name, query, pdb, _instance in _corpus_cases():
        if name not in AUTOMATON_CHECKED:
            continue
        expected = Fraction(frozen[name]["probability"])
        estimate = pqe_estimate(
            query, pdb, method="exact-weighted", backend=backend
        )
        assert estimate.exact
        assert estimate.estimate == pytest.approx(float(expected), abs=1e-12)
        checked += 1
    assert checked == len(AUTOMATON_CHECKED)
