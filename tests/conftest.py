"""Shared fixtures and options for the repro test suite."""

from __future__ import annotations

import pytest

from repro.db import DatabaseInstance, Fact, ProbabilisticDatabase
from repro.queries import parse_query, path_query


def pytest_addoption(parser):
    parser.addoption(
        "--update-golden",
        action="store_true",
        default=False,
        help="rewrite tests/golden/ from the current implementation "
             "instead of comparing against it (review the diff!)",
    )


@pytest.fixture
def update_golden(request) -> bool:
    """True when the run should refresh the golden corpus on disk."""
    return request.config.getoption("--update-golden")


@pytest.fixture
def tiny_path_instance() -> DatabaseInstance:
    """A 5-fact instance for Q2 = R1(x,y), R2(y,z) with two full paths."""
    return DatabaseInstance(
        [
            Fact("R1", ("a", "b")),
            Fact("R1", ("a", "c")),
            Fact("R2", ("b", "d")),
            Fact("R2", ("c", "d")),
            Fact("R2", ("e", "f")),
        ]
    )


@pytest.fixture
def q2():
    return path_query(2)


@pytest.fixture
def q3():
    return path_query(3)


@pytest.fixture
def rs_query():
    return parse_query("Q :- R(x, y), S(y, z)")


@pytest.fixture
def tiny_pdb(tiny_path_instance) -> ProbabilisticDatabase:
    labels = {}
    pool = ["1/2", "1/3", "3/4", "2/5", "5/6"]
    for i, fact in enumerate(tiny_path_instance):
        labels[fact] = pool[i % len(pool)]
    return ProbabilisticDatabase(labels)
