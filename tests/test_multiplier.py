"""Tests for NFTAs with multipliers and the comparator gadget (Sec 5.1)."""

import pytest
from hypothesis import given, settings
from hypothesis import strategies as st

from repro.automata.multiplier import (
    MultiplierNFTA,
    comparator_gadget_transitions,
    minimal_gadget_bits,
)
from repro.automata.nfta import NFTA
from repro.automata.nfta_counting import count_nfta_exact
from repro.errors import AutomatonError


class TestMinimalGadgetBits:
    def test_paper_formula(self):
        # u(1) = 0; u(w) = floor(log2(w-1)) + 1 otherwise.
        assert minimal_gadget_bits(1) == 0
        assert minimal_gadget_bits(2) == 1
        assert minimal_gadget_bits(3) == 2
        assert minimal_gadget_bits(4) == 2
        assert minimal_gadget_bits(5) == 3
        assert minimal_gadget_bits(8) == 3
        assert minimal_gadget_bits(9) == 4

    def test_invalid(self):
        with pytest.raises(AutomatonError):
            minimal_gadget_bits(0)


class TestComparatorGadget:
    @given(st.integers(min_value=1, max_value=40))
    @settings(max_examples=40, deadline=None)
    def test_accepts_exactly_n_strings(self, n):
        bits = minimal_gadget_bits(max(n, 2))
        transitions = comparator_gadget_transitions(
            n, bits, entry="entry", children=("leaf",), fresh_prefix="g"
        )
        transitions.append(("leaf", "end", ()))
        transitions.append(("root", "start", ("entry",)))
        nfta = NFTA(transitions, initial="root")
        # tree: start -> bits of gadget -> end leaf.
        assert count_nfta_exact(nfta, 2 + bits) == n

    @given(
        st.integers(min_value=1, max_value=16),
        st.integers(min_value=0, max_value=3),
    )
    @settings(max_examples=40, deadline=None)
    def test_padded_gadgets(self, n, extra):
        bits = minimal_gadget_bits(max(n, 2)) + extra
        transitions = comparator_gadget_transitions(
            n, bits, entry="entry", children=(), fresh_prefix="g"
        )
        transitions.append(("root", "start", ("entry",)))
        nfta = NFTA(transitions, initial="root")
        assert count_nfta_exact(nfta, 1 + bits) == n

    def test_overflow_rejected(self):
        with pytest.raises(AutomatonError):
            comparator_gadget_transitions(
                5, 2, entry="e", children=(), fresh_prefix="g"
            )

    def test_zero_bits_rejected(self):
        with pytest.raises(AutomatonError):
            comparator_gadget_transitions(
                1, 0, entry="e", children=(), fresh_prefix="g"
            )

    def test_state_count_logarithmic(self):
        # ≤ 2·bits states per gadget (Remark 2: logarithmic in n).
        for n in (3, 9, 33, 1000):
            bits = minimal_gadget_bits(n)
            transitions = comparator_gadget_transitions(
                n, bits, entry="e", children=(), fresh_prefix="g"
            )
            states = {t[0] for t in transitions}
            assert len(states) <= 2 * bits


class TestMultiplierNFTA:
    def test_translation_multiplies_counts(self):
        # Base automaton: single leaf; multiplier n on the leaf rule.
        for n in (1, 2, 3, 5, 7, 12):
            bits = minimal_gadget_bits(n)
            m = MultiplierNFTA([("s", "a", n, bits, ())], initial="s")
            assert count_nfta_exact(m.translate(), 1 + bits) == n

    def test_multiplier_zero_drops_transition(self):
        m = MultiplierNFTA(
            [("s", "a", 0, 0, ()), ("s", "b", 1, 0, ())], initial="s"
        )
        nfta = m.translate()
        assert count_nfta_exact(nfta, 1) == 1  # only the b leaf

    def test_multipliers_compose_along_tree(self):
        # Chain of two facts with multipliers 3 and 2: 3·2 = 6 trees.
        m = MultiplierNFTA(
            [
                ("s", "a", 3, 2, ("t",)),
                ("t", "b", 2, 1, ()),
            ],
            initial="s",
        )
        # sizes: a node + 2 gadget bits + b node + 1 gadget bit = 5.
        assert count_nfta_exact(m.translate(), 5) == 6

    def test_multipliers_sum_across_branches(self):
        # Two alternative leaf rules with same gadget length: counts add.
        m = MultiplierNFTA(
            [
                ("s", "a", 3, 2, ()),
                ("s", "b", 2, 2, ()),
            ],
            initial="s",
        )
        assert count_nfta_exact(m.translate(), 3) == 5

    def test_binary_transition_with_multiplier(self):
        m = MultiplierNFTA(
            [
                ("s", "r", 2, 1, ("u", "v")),
                ("u", "a", 1, 0, ()),
                ("v", "b", 1, 0, ()),
            ],
            initial="s",
        )
        # r node + 1 gadget bit + a + b = 4 nodes.
        assert count_nfta_exact(m.translate(), 4) == 2

    def test_invalid_multiplier(self):
        with pytest.raises(AutomatonError):
            MultiplierNFTA([("s", "a", -1, 0, ())], initial="s")

    def test_multiplier_does_not_fit(self):
        with pytest.raises(AutomatonError):
            MultiplierNFTA([("s", "a", 5, 2, ())], initial="s")

    def test_bits_zero_multiplier_above_one_rejected_at_translate(self):
        # Constructor catches it via the fit check.
        with pytest.raises(AutomatonError):
            MultiplierNFTA([("s", "a", 2, 0, ())], initial="s")

    def test_encoding_size(self):
        m = MultiplierNFTA(
            [("s", "a", 2, 1, ("t",)), ("t", "b", 1, 0, ())],
            initial="s",
        )
        assert m.encoding_size == (3 + 1) + (3 + 0)
