"""Metamorphic properties of the lifted evaluator.

Each transformation below provably preserves ``Pr_H(Q)``; the lifted
route must therefore return the *identical* Fraction before and after:

- adding facts over relations the query never mentions (marginalised
  away by tuple-independence);
- renaming query variables (α-equivalence);
- permuting atoms of a CQ / disjuncts of a UCQ (conjunction and
  disjunction are commutative);
- duplicating a UCQ disjunct (idempotence — absorbed by minimization).
"""

from __future__ import annotations

import random

import pytest

from repro.db.fact import Fact
from repro.db.probabilistic import ProbabilisticDatabase
from repro.queries.atoms import Atom, Variable
from repro.queries.cq import ConjunctiveQuery
from repro.queries.lifted import classify_query, lifted_probability
from repro.queries.ucq import UnionQuery
from repro.workloads import (
    random_hierarchical_query,
    random_instance_for_query,
    random_probabilities,
    random_safe_ucq,
    random_shatterable_query,
)

pytestmark = pytest.mark.lifted

SEEDS = range(15)


def _pdb_for(query, seed):
    instance = random_instance_for_query(
        query, domain_size=2, facts_per_relation=2, seed=seed
    )
    return random_probabilities(instance, seed=seed, max_denominator=5)


def _rename(query: ConjunctiveQuery, mapping) -> ConjunctiveQuery:
    return ConjunctiveQuery(
        [
            Atom(
                atom.relation,
                tuple(
                    Variable(mapping.get(v.name, v.name))
                    for v in atom.args
                ),
            )
            for atom in query.atoms
        ]
    )


def _cq_cases():
    for seed in SEEDS:
        for generator in (
            random_hierarchical_query, random_shatterable_query,
        ):
            query = generator(seed)
            yield seed, query, _pdb_for(query, seed)


def test_unmentioned_relations_never_change_the_answer():
    for seed, query, pdb in _cq_cases():
        baseline = lifted_probability(query, pdb)
        widened = dict(pdb.probabilities)
        widened[Fact("ZZ_unrelated", ("w1",))] = "1/2"
        widened[Fact("ZZ_other", ("w1", "w2"))] = "9/10"
        assert lifted_probability(
            query, ProbabilisticDatabase(widened)
        ) == baseline, (seed, str(query))


def test_variable_renaming_never_changes_the_answer():
    for seed, query, pdb in _cq_cases():
        baseline = lifted_probability(query, pdb)
        mapping = {
            name: f"v{i}"
            for i, name in enumerate(sorted(
                v.name for v in query.variables
            ))
        }
        renamed = _rename(query, mapping)
        assert lifted_probability(renamed, pdb) == baseline, (
            seed, str(query)
        )


def test_atom_permutation_never_changes_the_answer():
    for seed, query, pdb in _cq_cases():
        baseline = lifted_probability(query, pdb)
        atoms = list(query.atoms)
        random.Random(seed).shuffle(atoms)
        permuted = ConjunctiveQuery(atoms)
        assert lifted_probability(permuted, pdb) == baseline, (
            seed, str(query)
        )


def _ucq_pdb(ucq, seed):
    labels = {}
    for index, disjunct in enumerate(ucq.disjuncts):
        instance = random_instance_for_query(
            disjunct, domain_size=2, facts_per_relation=2,
            seed=seed + index,
        )
        part = random_probabilities(
            instance, seed=seed + index, max_denominator=4
        )
        labels.update(part.probabilities)
    return ProbabilisticDatabase(labels)


def test_disjunct_permutation_never_changes_the_answer():
    for seed in SEEDS:
        ucq = random_safe_ucq(seed)
        pdb = _ucq_pdb(ucq, seed)
        baseline = lifted_probability(ucq, pdb)
        disjuncts = list(ucq.disjuncts)
        random.Random(seed).shuffle(disjuncts)
        assert lifted_probability(
            UnionQuery(disjuncts), pdb
        ) == baseline, str(ucq)


def test_duplicating_a_disjunct_is_a_no_op_after_minimization():
    for seed in SEEDS:
        plain = random_safe_ucq(seed, duplicate=False)
        doubled = random_safe_ucq(seed, duplicate=True)
        # Same seed: `doubled` is `plain` plus one verbatim repeat.
        assert len(doubled) == len(plain) + 1
        assert len(doubled.minimized()) == len(plain.minimized())
        pdb = _ucq_pdb(plain, seed)
        assert lifted_probability(doubled, pdb) == lifted_probability(
            plain, pdb
        ), str(plain)


def test_metamorphic_transforms_preserve_the_classification():
    # Renaming/permutation must not flip safe → unknown: the plan memo
    # keys on a canonicalised token and the rules are syntax-robust.
    for seed, query, _pdb in _cq_cases():
        assert classify_query(query).safe
        atoms = list(query.atoms)
        random.Random(seed + 1).shuffle(atoms)
        assert classify_query(ConjunctiveQuery(atoms)).safe
