"""Tests for almost-uniform sampling of satisfying subinstances."""

from collections import Counter

import pytest

from repro.core.sampling import (
    sample_posterior_worlds,
    sample_satisfying_subinstances,
)
from repro.db.fact import Fact
from repro.db.instance import DatabaseInstance
from repro.db.probabilistic import ProbabilisticDatabase
from repro.db.semantics import satisfies
from repro.errors import EstimationError
from repro.queries.builders import path_query, star_query
from repro.workloads.graphs import layered_path_instance
from repro.workloads.instances import (
    random_instance_for_query,
    random_probabilities,
)


class TestUniformSampling:
    def test_samples_satisfy_query(self):
        query = path_query(2)
        instance = layered_path_instance(2, 2, 0.7, seed=1)
        samples = sample_satisfying_subinstances(
            query, instance, k=30, seed=0
        )
        assert len(samples) == 30
        for subset in samples:
            assert subset <= instance.facts
            assert satisfies(DatabaseInstance(subset), query)

    def test_samples_cover_small_space(self):
        # Tiny instance: R1(a,b), R2(b,c). Satisfying subinstances are
        # {both} only -> one world... add a second independent R1 fact:
        instance = DatabaseInstance(
            [
                Fact("R1", ("a", "b")),
                Fact("R1", ("x", "y")),  # never joins
                Fact("R2", ("b", "c")),
            ]
        )
        query = path_query(2)
        # Satisfying subinstances: must contain R1(a,b) and R2(b,c);
        # R1(x,y) free → 2 worlds.
        samples = sample_satisfying_subinstances(
            query, instance, k=100, seed=3, exact_set_cap=0
        )
        distinct = set(samples)
        assert len(distinct) == 2

    def test_roughly_uniform_on_tiny_space(self):
        instance = DatabaseInstance(
            [
                Fact("R1", ("a", "b")),
                Fact("R1", ("x", "y")),
                Fact("R2", ("b", "c")),
            ]
        )
        query = path_query(2)
        samples = sample_satisfying_subinstances(
            query, instance, k=400, seed=5, exact_set_cap=0
        )
        counts = Counter(samples)
        frequencies = [c / len(samples) for c in counts.values()]
        # Two equally-likely worlds: each should be near 1/2.
        assert all(0.3 < f < 0.7 for f in frequencies)

    def test_star_query_sampling(self):
        query = star_query(2)
        instance = random_instance_for_query(query, 2, 2, seed=2)
        samples = sample_satisfying_subinstances(
            query, instance, k=20, seed=1
        )
        for subset in samples:
            assert satisfies(DatabaseInstance(subset), query)

    def test_unsatisfiable_raises(self):
        instance = DatabaseInstance([Fact("R1", ("a", "b"))])
        with pytest.raises(EstimationError):
            sample_satisfying_subinstances(
                path_query(2), instance, k=5, seed=0
            )


class TestPosteriorSampling:
    def test_samples_satisfy_query(self):
        query = path_query(2)
        instance = layered_path_instance(2, 2, 0.7, seed=4)
        pdb = random_probabilities(instance, seed=5, max_denominator=3)
        samples = sample_posterior_worlds(query, pdb, k=25, seed=6)
        assert len(samples) == 25
        for subset in samples:
            assert satisfies(DatabaseInstance(subset), query)

    def test_posterior_biased_toward_likely_worlds(self):
        # Two disjoint witnesses; one far more probable than the other.
        facts = {
            Fact("R1", ("a", "b")): "9/10",
            Fact("R2", ("b", "c")): "9/10",
            Fact("R1", ("x", "y")): "1/10",
            Fact("R2", ("y", "z")): "1/10",
        }
        pdb = ProbabilisticDatabase(facts)
        query = path_query(2)
        samples = sample_posterior_worlds(
            query, pdb, k=300, seed=7, exact_set_cap=0
        )
        likely_path = {Fact("R1", ("a", "b")), Fact("R2", ("b", "c"))}
        unlikely_path = {Fact("R1", ("x", "y")), Fact("R2", ("y", "z"))}
        with_likely = sum(1 for s in samples if likely_path <= s)
        with_unlikely = sum(1 for s in samples if unlikely_path <= s)
        assert with_likely > 3 * with_unlikely


class TestPosteriorDistribution:
    def test_total_variation_against_exact_conditional(self):
        """Empirical posterior vs the exact conditional distribution."""
        from collections import Counter
        from fractions import Fraction

        facts = {
            Fact("R1", ("a", "b")): Fraction(2, 3),
            Fact("R2", ("b", "c")): Fraction(1, 2),
            Fact("R1", ("x", "y")): Fraction(1, 3),
            Fact("R2", ("y", "z")): Fraction(1, 2),
        }
        pdb = ProbabilisticDatabase(facts)
        query = path_query(2)

        # Exact conditional over satisfying subinstances.
        exact: dict[frozenset, Fraction] = {}
        total = Fraction(0)
        for subset in pdb.instance.subinstances():
            if not subset:
                continue
            if satisfies(DatabaseInstance(subset), query):
                weight = pdb.subinstance_probability(subset)
                exact[subset] = weight
                total += weight
        exact = {world: w / total for world, w in exact.items()}

        k = 2000
        samples = sample_posterior_worlds(
            query, pdb, k=k, seed=11, exact_set_cap=0
        )
        empirical = Counter(samples)
        tv = sum(
            abs(empirical.get(world, 0) / k - float(probability))
            for world, probability in exact.items()
        ) / 2
        # Generous envelope: sampling + estimator bias.
        assert tv < 0.1, tv

    def test_uniform_sampler_total_variation(self):
        from collections import Counter

        instance = DatabaseInstance(
            [
                Fact("R1", ("a", "b")),
                Fact("R2", ("b", "c")),
                Fact("R1", ("x", "y")),
                Fact("R2", ("y", "z")),
            ]
        )
        query = path_query(2)
        satisfying = [
            subset
            for subset in instance.subinstances()
            if subset and satisfies(DatabaseInstance(subset), query)
        ]
        k = 2000
        samples = sample_satisfying_subinstances(
            query, instance, k=k, seed=13, exact_set_cap=0
        )
        empirical = Counter(samples)
        uniform = 1 / len(satisfying)
        tv = sum(
            abs(empirical.get(world, 0) / k - uniform)
            for world in satisfying
        ) / 2
        assert tv < 0.1, tv
