"""Tests for the naive Monte-Carlo baseline."""

import pytest

from repro.core.exact import exact_probability
from repro.core.monte_carlo import (
    additive_sample_bound,
    monte_carlo_probability,
)
from repro.db.fact import Fact
from repro.db.probabilistic import ProbabilisticDatabase
from repro.errors import EstimationError
from repro.queries.builders import path_query
from repro.workloads.graphs import layered_path_instance
from repro.workloads.instances import random_probabilities


class TestSampleBound:
    def test_hoeffding_monotonicity(self):
        assert additive_sample_bound(0.01, 0.05) > additive_sample_bound(
            0.1, 0.05
        )
        assert additive_sample_bound(0.05, 0.01) > additive_sample_bound(
            0.05, 0.1
        )

    def test_invalid(self):
        with pytest.raises(EstimationError):
            additive_sample_bound(0, 0.1)


class TestEstimator:
    def test_certain_query(self):
        pdb = ProbabilisticDatabase(
            {Fact("R1", ("a", "b")): 1, Fact("R2", ("b", "c")): 1}
        )
        result = monte_carlo_probability(
            path_query(2), pdb, samples=50, seed=0
        )
        assert result.estimate == 1.0

    def test_impossible_query(self):
        pdb = ProbabilisticDatabase({Fact("R1", ("a", "b")): "1/2"})
        result = monte_carlo_probability(
            path_query(2), pdb, samples=50, seed=0
        )
        assert result.estimate == 0.0

    @pytest.mark.parametrize("seed", range(3))
    def test_additive_accuracy(self, seed):
        instance = layered_path_instance(2, 2, 0.8, seed=seed)
        pdb = random_probabilities(instance, seed=seed, max_denominator=4)
        truth = float(exact_probability(path_query(2), pdb))
        result = monte_carlo_probability(
            path_query(2), pdb, epsilon=0.05, delta=0.05, seed=seed
        )
        assert abs(result.estimate - truth) < 0.1

    def test_standard_error(self):
        pdb = ProbabilisticDatabase({Fact("R1", ("a", "b")): "1/2"})
        result = monte_carlo_probability(
            path_query(1), pdb, samples=400, seed=1
        )
        assert 0 < result.standard_error < 0.05

    def test_determinism(self):
        pdb = ProbabilisticDatabase(
            {Fact("R1", ("a", "b")): "1/2", Fact("R1", ("c", "d")): "1/3"}
        )
        a = monte_carlo_probability(path_query(1), pdb, samples=100, seed=9)
        b = monte_carlo_probability(path_query(1), pdb, samples=100, seed=9)
        assert a.estimate == b.estimate

    def test_invalid_samples(self):
        pdb = ProbabilisticDatabase({Fact("R1", ("a", "b")): "1/2"})
        with pytest.raises(EstimationError):
            monte_carlo_probability(path_query(1), pdb, samples=0)

    def test_relative_error_failure_mode(self):
        """The documented weakness: tiny probabilities need huge sample
        counts for relative accuracy — with few samples the estimate of
        a 1e-6-probability event is simply 0."""
        pdb = ProbabilisticDatabase(
            {Fact("R1", ("a", "b")): "1/1000000"}
        )
        result = monte_carlo_probability(
            path_query(1), pdb, samples=100, seed=2
        )
        assert result.estimate == 0.0  # infinite relative error
