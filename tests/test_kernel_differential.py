"""Differential tests: every kernel backend pair, compared bitwise.

The optimized and vectorized backends (:mod:`repro.core.kernels` over
:mod:`repro.automata.optimize`, and :mod:`repro.core.vectorized`)
promise *bitwise-identical* results to the reference transcription for
any input and any seed — not "close", identical.  This module enforces
that promise over the full backend cross product (the ``vectorized``
legs drop out cleanly when numpy is not installed) on the repository's
existing corpus:

- every automaton shape used by ``test_nfta_counting`` (Catalan, random
  NFTAs with dead/unreachable/duplicate structure, ambiguous and
  adversarially ambiguous automata, weighted variants), for exact
  counts, hybrid/sampled counts, and sampled tree lists;
- the query fixtures of ``conftest.py`` and the random query/instance
  shapes of ``test_estimators`` / ``test_cross_validation``, through
  ``pqe_estimate`` / ``ur_estimate`` / ``PQEEngine`` on every routed
  method;
- Karp–Luby over random monotone DNFs;
- RPQ product automata: the exact product-DP route of
  ``rpq_probability_estimate`` over the handcrafted adversarial graph
  corpus;
- whole batches at workers 1 and 4, where answers *and* the merged
  deterministic counters must agree across both worker counts and
  every backend.

Comparisons use ``==`` on exact values (``int``/``Fraction``: value and
type), full result dataclasses, and tree lists — never ``approx``.
"""

from __future__ import annotations

import random
from fractions import Fraction

import pytest

from repro.automata.nfta import NFTA
from repro.automata.nfta_counting import (
    count_nfta,
    count_nfta_exact,
    sample_accepted_trees,
)
from repro.core.estimator import PQEEngine
from repro.core.pqe_estimate import pqe_estimate
from repro.core.ur_estimate import ur_estimate
from repro.db.fact import Fact
from repro.lineage.dnf import DNF
from repro.lineage.karp_luby import karp_luby_probability
from repro.queries.builders import path_query, star_query
from repro.workloads.instances import (
    random_instance_for_query,
    random_probabilities,
)

from test_nfta_counting import _catalan_automaton, _random_nfta

from repro.core.kernels import vectorized_available

BACKENDS = ("reference", "optimized") + (
    ("vectorized",) if vectorized_available() else ()
)


def _ambiguous_automaton() -> NFTA:
    # Two distinct run assignments accept the same tree a(a, a).
    return NFTA(
        [
            ("s", "a", ("p", "r")),
            ("s", "a", ("p", "p")),
            ("p", "a", ()),
            ("r", "a", ()),
        ],
        initial="s",
    )


def _adversarial_automaton(m: int = 4) -> NFTA:
    # m states all deriving the full binary-tree language (maximal pool
    # correlation in the sampler, heavy duplicate structure for dedup).
    transitions = []
    names = [f"c{i}" for i in range(m)]
    for name in names:
        transitions.append((name, "a", ()))
        for left in names:
            for right in names:
                transitions.append((name, "a", (left, right)))
    return NFTA(transitions, initial=names[0])


def _dead_state_automaton() -> NFTA:
    # 'dead' never produces a tree; 'lost' is unreachable; the duplicate
    # leaf rule exercises dedup.  All three must be invisible to counts.
    return NFTA(
        [
            ("q", "a", ()),
            ("q", "a", ()),
            ("q", "b", ("q", "q")),
            ("q", "b", ("dead", "q")),
            ("dead", "b", ("dead",)),
            ("lost", "a", ()),
        ],
        initial="q",
    )


def _automaton_corpus() -> list[NFTA]:
    corpus = [
        _catalan_automaton(),
        _ambiguous_automaton(),
        _adversarial_automaton(),
        _dead_state_automaton(),
    ]
    corpus.extend(_random_nfta(seed, states=4) for seed in range(8))
    return corpus


def _weight_table(nfta: NFTA) -> dict:
    return {
        symbol: weight
        for symbol, weight in zip(
            sorted(nfta.alphabet, key=str), [2, 3, 5, 7, 11]
        )
    }


# ---------------------------------------------------------------------------
# automaton corpus: counts, estimates, sampled trees


@pytest.mark.parametrize("index", range(12))
def test_exact_counts_bitwise(index):
    nfta = _automaton_corpus()[index]
    weights = _weight_table(nfta)
    fractional = {s: Fraction(w, 7) for s, w in weights.items()}
    for size in range(1, 8):
        plain = [
            count_nfta_exact(nfta, size, backend=backend)
            for backend in BACKENDS
        ]
        for other in plain[1:]:
            assert other == plain[0]
            assert type(other) is type(plain[0])
        for table in (weights, fractional):
            weighted = [
                count_nfta_exact(
                    nfta, size, weight_of=table.get, backend=backend
                )
                for backend in BACKENDS
            ]
            for other in weighted[1:]:
                assert other == weighted[0]
                assert type(other) is type(weighted[0])


@pytest.mark.parametrize("index", range(12))
@pytest.mark.parametrize("exact_set_cap", [0, 4096])
def test_count_nfta_bitwise(index, exact_set_cap):
    nfta = _automaton_corpus()[index]
    results = [
        count_nfta(
            nfta,
            6,
            epsilon=0.3,
            seed=index,
            exact_set_cap=exact_set_cap,
            repetitions=3,
            backend=backend,
        )
        for backend in BACKENDS
    ]
    assert all(result == results[0] for result in results[1:])


@pytest.mark.parametrize("index", range(12))
def test_sampled_trees_bitwise(index):
    nfta = _automaton_corpus()[index]
    size_mask = nfta.possible_sizes(7).get(nfta.initial, 0)
    sizes = [s for s in range(3, 8) if (size_mask >> s) & 1]
    if not sizes:
        pytest.skip("no accepted size in range for this automaton")
    size = sizes[0]
    trees = [
        sample_accepted_trees(
            nfta, size, k=25, seed=index, exact_set_cap=0, backend=backend
        )
        for backend in BACKENDS
    ]
    assert all(sample == trees[0] for sample in trees[1:])


def test_weighted_sampling_bitwise():
    nfta = NFTA([("q", "light", ()), ("q", "heavy", ())], initial="q")
    weights = {"light": 1, "heavy": 9}
    trees = [
        sample_accepted_trees(
            nfta, 1, k=120, seed=2, weight_of=weights.get,
            exact_set_cap=16, backend=backend,
        )
        for backend in BACKENDS
    ]
    assert all(sample == trees[0] for sample in trees[1:])


# ---------------------------------------------------------------------------
# query corpus: estimators and the engine


def _query_corpus():
    cases = []
    for i, query in enumerate(
        [path_query(2), path_query(3), star_query(2), star_query(3)]
    ):
        instance = random_instance_for_query(
            query, domain_size=2, facts_per_relation=3, seed=60 + i
        )
        pdb = random_probabilities(instance, seed=60 + i, max_denominator=4)
        cases.append((query, instance, pdb))
    return cases


@pytest.mark.parametrize("case", range(4))
@pytest.mark.parametrize(
    "method", ["fpras", "fpras-weighted", "exact-automaton", "exact-weighted"]
)
def test_pqe_estimate_bitwise(case, method):
    query, _instance, pdb = _query_corpus()[case]
    estimates = [
        pqe_estimate(
            query, pdb, epsilon=0.3, seed=case, method=method,
            backend=backend,
        )
        for backend in BACKENDS
    ]
    for other in estimates[1:]:
        assert other.estimate == estimates[0].estimate
        assert other.count_result == estimates[0].count_result


@pytest.mark.parametrize("case", range(4))
@pytest.mark.parametrize("method", ["fpras", "exact-automaton"])
def test_ur_estimate_bitwise(case, method):
    query, instance, _pdb = _query_corpus()[case]
    estimates = [
        ur_estimate(
            query, instance, epsilon=0.3, seed=case, method=method,
            backend=backend,
        )
        for backend in BACKENDS
    ]
    for other in estimates[1:]:
        assert other.estimate == estimates[0].estimate
        assert other.count_result == estimates[0].count_result


def test_engine_fixture_corpus_bitwise(q2, q3, tiny_pdb):
    for query in (q2, q3):
        for method in ("auto", "fpras", "fpras-weighted", "karp-luby"):
            answers = [
                PQEEngine(seed=17, kernel_backend=backend).probability(
                    query, tiny_pdb, method=method
                )
                for backend in BACKENDS
            ]
            assert all(
                answer == answers[0] for answer in answers[1:]
            ), (query, method)


def test_engine_random_sjf_corpus_bitwise():
    # The test_cross_validation query/instance shape: random SJF queries
    # with shared variables over small random instances.
    from test_cross_validation import _random_instance, _random_sjf_query

    rng = random.Random(5)
    checked = 0
    while checked < 6:
        query = _random_sjf_query(rng)
        instance = _random_instance(query, rng, max_facts=8)
        pdb = random_probabilities(instance, seed=checked, max_denominator=5)
        answers = [
            PQEEngine(
                seed=checked, kernel_backend=backend
            ).probability(query, pdb, method="fpras")
            for backend in BACKENDS
        ]
        assert all(answer == answers[0] for answer in answers[1:])
        checked += 1


def test_karp_luby_random_dnfs_bitwise():
    rng = random.Random(99)
    for trial in range(25):
        facts = [Fact("R", (f"a{i}",)) for i in range(rng.randint(2, 8))]
        clauses = frozenset(
            frozenset(rng.sample(facts, rng.randint(1, min(3, len(facts)))))
            for _ in range(rng.randint(1, 6))
        )
        formula = DNF(clauses)
        probs = {f: Fraction(rng.randint(1, 9), 10) for f in facts}
        seed = rng.randint(0, 10**6)
        samples = rng.randint(1, 300)
        results = [
            karp_luby_probability(
                formula, probs, seed=seed, samples=samples, backend=backend
            )
            for backend in BACKENDS
        ]
        assert all(result == results[0] for result in results[1:])


# ---------------------------------------------------------------------------
# RPQ product automata: the exact product-DP route per backend


@pytest.mark.parametrize("case", range(8))
def test_rpq_exact_product_dp_bitwise(case):
    from repro.graphs import rpq_probability_estimate
    from test_rpq_differential import _handcrafted_cases

    name, graph, query = _handcrafted_cases()[case]
    estimates = [
        rpq_probability_estimate(
            graph, query, method="exact", backend=backend
        )
        for backend in BACKENDS
    ]
    for other in estimates[1:]:
        assert other.exact is estimates[0].exact, name
        assert other.rational == estimates[0].rational, name
        assert other.estimate == estimates[0].estimate, name


@pytest.mark.parametrize("case", range(8))
def test_rpq_auto_frontier_bailout_parity(case):
    # 'auto' with a tiny frontier cap: whether the DP bails to the
    # FPRAS must be backend-independent, and the fallback estimates
    # (fixed seed) bitwise-equal.
    from repro.graphs import rpq_probability_estimate
    from test_rpq_differential import _handcrafted_cases

    name, graph, query = _handcrafted_cases()[case]
    estimates = [
        rpq_probability_estimate(
            graph, query, method="auto", epsilon=0.3, seed=case,
            backend=backend,
        )
        for backend in BACKENDS
    ]
    for other in estimates[1:]:
        assert other.method == estimates[0].method, name
        assert other.estimate == estimates[0].estimate, name
        assert other.rational == estimates[0].rational, name


# ---------------------------------------------------------------------------
# batches: answers and merged counters at workers 1 and 4


def test_batch_answers_and_counters_bitwise():
    items = [(query, pdb) for query, _instance, pdb in _query_corpus()]
    merged = {}
    for backend in BACKENDS:
        engine = PQEEngine(seed=23, kernel_backend=backend)
        per_workers = {}
        for workers in (1, 4):
            batch = engine.evaluate_batch(
                items, seed=23, max_workers=workers, telemetry=True
            )
            per_workers[workers] = (
                batch.values,
                batch.telemetry.metrics.deterministic_counters(),
            )
        # Worker-count invariance within one backend …
        assert per_workers[1] == per_workers[4]
        merged[backend] = per_workers[1]
    # … and full answer + counter parity across backends: the optimized
    # and vectorized kernels do the same semantic work, bit for bit
    # (only the contract-exempt kernels.* bookkeeping may differ).
    for backend in BACKENDS[1:]:
        assert merged[backend] == merged["reference"]
