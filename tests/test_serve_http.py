"""Socket-level coverage for the serve daemon (``-m serve``).

One live :class:`ThreadingHTTPServer` per test, bound to an ephemeral
port on loopback; requests go through ``urllib`` so the wire format —
status codes, JSON bodies, Content-Length framing — is what a real
client sees.  Request-path *logic* is covered in ``test_serve.py``.
"""

import json
import urllib.error
import urllib.request

import pytest

from repro.db.fact import Fact
from repro.db.probabilistic import ProbabilisticDatabase
from repro.serve import PQEServer, ServerConfig

pytestmark = pytest.mark.serve

BASE = "Q :- R(x), S(x, y), T(y)"


@pytest.fixture
def pdb() -> ProbabilisticDatabase:
    return ProbabilisticDatabase({
        Fact("R", ("a",)): "1/2",
        Fact("S", ("a", "b")): "1/2",
        Fact("T", ("b",)): "1/2",
    })


@pytest.fixture
def server(pdb):
    instance = PQEServer(pdb, ServerConfig())
    instance.start()
    yield instance
    instance.drain(reason="test-teardown")


def get(server, path):
    url = f"http://127.0.0.1:{server.port}{path}"
    try:
        with urllib.request.urlopen(url, timeout=10) as response:
            return response.status, json.loads(response.read())
    except urllib.error.HTTPError as failure:
        return failure.code, json.loads(failure.read())


def post(server, path, payload, *, raw=None):
    body = raw if raw is not None else json.dumps(payload).encode()
    request = urllib.request.Request(
        f"http://127.0.0.1:{server.port}{path}",
        data=body,
        headers={"Content-Type": "application/json"},
    )
    try:
        with urllib.request.urlopen(request, timeout=10) as response:
            return response.status, json.loads(response.read())
    except urllib.error.HTTPError as failure:
        return failure.code, json.loads(failure.read())


class TestEndpoints:
    def test_healthz(self, server):
        assert get(server, "/healthz") == (
            200, {"ok": True, "status": "alive"}
        )

    def test_readyz_flips_on_drain(self, server):
        assert get(server, "/readyz") == (
            200, {"ok": True, "status": "ready"}
        )
        server.drain(reason="test")
        # The HTTP listener is closed by drain, so readiness is
        # asserted through the in-process surface afterwards.
        assert server.admission.draining

    def test_evaluate_round_trip(self, server):
        status, body = post(server, "/evaluate", {"query": BASE})
        assert status == 200
        assert body["ok"] is True
        assert 0.0 <= body["value"] <= 1.0
        assert body["trace_id"].startswith("req-")

    def test_evaluate_rejects_malformed_json(self, server):
        status, body = post(
            server, "/evaluate", None, raw=b"{not json"
        )
        assert status == 400
        assert body["reason"] == "bad_request"

    def test_evaluate_rejects_bad_payload(self, server):
        status, body = post(server, "/evaluate", {"nope": 1})
        assert status == 400
        assert body["reason"] == "bad_request"

    def test_stats_endpoint(self, server):
        post(server, "/evaluate", {"query": BASE})
        status, body = get(server, "/stats")
        assert status == 200
        assert body["settled"] == 1
        assert body["requests"]["serve.ok"] == 1
        assert body["draining"] is False

    def test_unknown_routes_404(self, server):
        assert get(server, "/nope")[0] == 404
        assert post(server, "/nope", {})[0] == 404

    def test_concurrent_requests_share_the_warm_registry(self, server):
        from repro.testing.faults import request_burst

        outcomes = request_burst(
            lambda i: post(
                server, "/evaluate", {"query": BASE, "method": "fpras"}
            ),
            count=8,
            concurrency=4,
        )
        assert all(
            not isinstance(outcome, Exception) and outcome[0] == 200
            for outcome in outcomes
        )
        values = {outcome[1]["value"] for outcome in outcomes}
        assert len(values) == 1  # content-derived seed: one answer
        counters = server.telemetry.metrics.counters
        assert counters["serve.ok"] == 8
        assert counters["serve.registry.hits"] > 0


class TestDrainOverHttp:
    def test_drain_stops_the_listener(self, pdb):
        instance = PQEServer(pdb, ServerConfig())
        instance.start()
        port = instance.port
        assert get(instance, "/healthz")[0] == 200
        assert instance.drain(reason="test") is True
        with pytest.raises(OSError):
            urllib.request.urlopen(
                f"http://127.0.0.1:{port}/healthz", timeout=2
            )
