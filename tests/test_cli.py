"""Tests for the command-line interface."""

import io

import pytest

from repro.cli import load_facts_csv, main
from repro.db.fact import Fact
from repro.errors import ReproError

CSV = """\
relation,probability,constant1,constant2
R1,1/2,a,b
R2,2/3,b,c
"""

CSV_NO_HEADER = """\
R1,1/2,a,b
R2,2/3,b,c
"""

CSV_WITH_COMMENTS = """\
# a probabilistic graph
R1,1/2,a,b

R2,2/3,b,c
"""


class TestLoadFactsCsv:
    @pytest.mark.parametrize(
        "text", [CSV, CSV_NO_HEADER, CSV_WITH_COMMENTS]
    )
    def test_load_variants(self, text):
        pdb = load_facts_csv(io.StringIO(text))
        assert len(pdb) == 2
        assert str(pdb.probability(Fact("R1", ("a", "b")))) == "1/2"

    def test_unary_fact(self):
        pdb = load_facts_csv(io.StringIO("U,1/3,a\n"))
        assert pdb.probability(Fact("U", ("a",))).denominator == 3

    def test_short_row_rejected(self):
        with pytest.raises(ReproError):
            load_facts_csv(io.StringIO("R1,1/2\n"))

    def test_duplicate_fact_rejected(self):
        with pytest.raises(ReproError):
            load_facts_csv(io.StringIO("R,1/2,a\nR,1/3,a\n"))

    def test_empty_rejected(self):
        with pytest.raises(ReproError):
            load_facts_csv(io.StringIO("# nothing\n"))


class TestMain:
    @pytest.fixture
    def data_file(self, tmp_path):
        path = tmp_path / "facts.csv"
        path.write_text(CSV)
        return str(path)

    def test_probability_run(self, data_file, capsys):
        code = main(
            ["--data", data_file, "--query", "Q :- R1(x,y), R2(y,z)"]
        )
        assert code == 0
        out = capsys.readouterr().out
        assert "Pr_H(Q) =" in out
        assert "1/3" in out  # 1/2 * 2/3 exactly

    def test_method_selection(self, data_file, capsys):
        code = main(
            [
                "--data", data_file,
                "--query", "Q :- R1(x,y), R2(y,z)",
                "--method", "fpras",
                "--epsilon", "0.2",
                "--seed", "1",
            ]
        )
        assert code == 0
        assert "fpras" in capsys.readouterr().out

    def test_reliability_mode(self, data_file, capsys):
        code = main(
            [
                "--data", data_file,
                "--query", "Q :- R1(x,y), R2(y,z)",
                "--reliability",
            ]
        )
        assert code == 0
        out = capsys.readouterr().out
        assert "UR(Q, D) = 1" in out  # only the full instance satisfies

    def test_query_file(self, data_file, tmp_path, capsys):
        query_path = tmp_path / "query.txt"
        query_path.write_text("Q :- R1(x, y)")
        code = main(
            ["--data", data_file, "--query-file", str(query_path)]
        )
        assert code == 0
        assert "Pr_H(Q) = 0.5" in capsys.readouterr().out

    def test_missing_data_file(self, capsys):
        code = main(["--data", "/nonexistent.csv", "--query", "R(x)"])
        assert code == 1
        assert "error:" in capsys.readouterr().err

    def test_bad_query(self, data_file, capsys):
        code = main(["--data", data_file, "--query", "not a query(("])
        assert code == 1
        assert "error:" in capsys.readouterr().err


class TestExtendedMethods:
    @pytest.fixture
    def data_file(self, tmp_path):
        path = tmp_path / "facts.csv"
        path.write_text(CSV)
        return str(path)

    def test_fpras_weighted(self, data_file, capsys):
        code = main(
            [
                "--data", data_file,
                "--query", "Q :- R1(x,y), R2(y,z)",
                "--method", "fpras-weighted",
                "--seed", "3",
            ]
        )
        assert code == 0
        assert "fpras-weighted" in capsys.readouterr().out

    def test_monte_carlo(self, data_file, capsys):
        code = main(
            [
                "--data", data_file,
                "--query", "Q :- R1(x,y), R2(y,z)",
                "--method", "monte-carlo",
                "--seed", "3",
                "--epsilon", "0.2",
            ]
        )
        assert code == 0
        assert "monte-carlo" in capsys.readouterr().out

    def test_reliability_rejects_karp_luby(self, data_file, capsys):
        code = main(
            [
                "--data", data_file,
                "--query", "Q :- R1(x,y), R2(y,z)",
                "--method", "karp-luby",
                "--reliability",
            ]
        )
        assert code == 1

    def test_explain_flag(self, data_file, capsys):
        code = main(
            [
                "--data", data_file,
                "--query", "Q :- R1(x,y), R2(y,z)",
                "--explain",
            ]
        )
        assert code == 0
        out = capsys.readouterr().out
        assert "plan:" in out
        assert "route:" in out


BATCH_JSON = """\
[
    "Q :- R1(x, y), R2(y, z)",
    {"query": "Q :- R1(x, y)", "method": "fpras-weighted"},
    {"query": "Q :- R1(x, y), R2(y, z)", "task": "reliability"}
]
"""


class TestBatch:
    @pytest.fixture
    def data_file(self, tmp_path):
        path = tmp_path / "facts.csv"
        path.write_text(CSV)
        return str(path)

    @pytest.fixture
    def batch_file(self, tmp_path):
        path = tmp_path / "batch.json"
        path.write_text(BATCH_JSON)
        return str(path)

    def test_batch_run(self, data_file, batch_file, capsys):
        code = main(
            [
                "eval",
                "--data", data_file,
                "--batch", batch_file,
                "--workers", "2",
                "--seed", "7",
            ]
        )
        assert code == 0
        out = capsys.readouterr().out
        assert "[0] Pr" in out and "[2] UR" in out
        assert "cache:" in out and "hit-rate" in out
        assert "0.333333" in out  # item 0 exactly 1/3

    def test_batch_is_reproducible_across_workers(
        self, data_file, batch_file, capsys
    ):
        outputs = []
        for workers in ("1", "4"):
            assert main(
                [
                    "--data", data_file,
                    "--batch", batch_file,
                    "--workers", workers,
                    "--seed", "7",
                ]
            ) == 0
            lines = capsys.readouterr().out.splitlines()
            outputs.append(
                [line for line in lines if line.startswith("[")]
            )
        assert outputs[0] == outputs[1]

    def test_eval_token_optional_for_single_query(self, data_file, capsys):
        code = main(
            ["eval", "--data", data_file,
             "--query", "Q :- R1(x,y), R2(y,z)"]
        )
        assert code == 0
        assert "Pr_H(Q) =" in capsys.readouterr().out

    def test_batch_excludes_query(self, data_file, batch_file, capsys):
        with pytest.raises(SystemExit):
            main(
                ["--data", data_file, "--batch", batch_file,
                 "--query", "Q :- R1(x,y)"]
            )

    def test_bad_batch_entries(self, data_file, tmp_path, capsys):
        for payload in ("{}", "[]", '[{"method": "auto"}]',
                        '[{"query": "Q :- R1(x,y)", "bogus": 1}]'):
            path = tmp_path / "bad.json"
            path.write_text(payload)
            code = main(["--data", data_file, "--batch", str(path)])
            assert code == 1
            assert "error:" in capsys.readouterr().err


FPRAS_ONLY_BATCH = """\
[{"query": "Q :- R1(x, y)", "method": "fpras-weighted"}]
"""


@pytest.mark.faults
class TestBatchResilience:
    """--timeout / --max-retries / --on-error / --json and exit codes."""

    @pytest.fixture
    def data_file(self, tmp_path):
        path = tmp_path / "facts.csv"
        path.write_text(CSV)
        return str(path)

    @pytest.fixture
    def batch_file(self, tmp_path):
        path = tmp_path / "batch.json"
        path.write_text(BATCH_JSON)
        return str(path)

    def test_skip_mode_reports_partial_failure(
        self, data_file, batch_file, capsys
    ):
        from repro.testing import FaultSpec, inject_faults

        with inject_faults(FaultSpec("counting.nfta", scope=1)):
            code = main(
                ["--data", data_file, "--batch", batch_file,
                 "--seed", "7", "--on-error", "skip"]
            )
        assert code == 3  # EXIT_PARTIAL
        out = capsys.readouterr().out
        assert "[1] Pr = FAILED" in out
        assert "injected fault" in out
        assert "failed:  1 of 3 items" in out
        assert "[0] Pr" in out and "[2] UR" in out  # siblings intact

    def test_json_output_carries_structured_error_records(
        self, data_file, batch_file, capsys
    ):
        import json as json_module

        from repro.testing import FaultSpec, inject_faults

        with inject_faults(FaultSpec("counting.nfta", scope=1)):
            code = main(
                ["--data", data_file, "--batch", batch_file,
                 "--seed", "7", "--on-error", "skip", "--json",
                 "--timeout", "60"]
            )
        assert code == 3
        payload = json_module.loads(capsys.readouterr().out)
        assert payload["items"] == 3
        assert payload["succeeded"] == 2
        assert payload["failed"] == 1
        record = payload["results"][1]
        assert record["ok"] is False
        assert record["error"]["exception"] == "EstimationError"
        assert record["error"]["phase"] == "counting.nfta"
        assert "deadline=60" in record["error"]["budget"]
        assert payload["results"][0]["ok"] is True

    def test_all_failed_exit_code(self, data_file, tmp_path, capsys):
        from repro.testing import FaultSpec, inject_faults

        path = tmp_path / "one.json"
        path.write_text(FPRAS_ONLY_BATCH)
        with inject_faults(FaultSpec("counting.nfta")):
            code = main(
                ["--data", data_file, "--batch", str(path),
                 "--seed", "7", "--on-error", "skip"]
            )
        assert code == 4  # EXIT_ALL_FAILED
        capsys.readouterr()

    def test_fail_mode_renders_siblings_and_exits_nonzero(
        self, data_file, batch_file, capsys
    ):
        from repro.testing import FaultSpec, inject_faults

        with inject_faults(FaultSpec("counting.nfta", scope=1)):
            code = main(
                ["--data", data_file, "--batch", batch_file, "--seed", "7"]
            )
        assert code == 3
        captured = capsys.readouterr()
        assert "error: batch item 1" in captured.err
        assert "[0] Pr" in captured.out  # completed work still shown

    def test_degrade_mode_recovers_and_exits_zero(
        self, data_file, batch_file, capsys
    ):
        from repro.testing import FaultSpec, inject_faults

        with inject_faults(FaultSpec("counting.nfta", scope=1)):
            code = main(
                ["--data", data_file, "--batch", batch_file,
                 "--seed", "7", "--on-error", "degrade"]
            )
        assert code == 0
        out = capsys.readouterr().out
        assert "degraded" in out

    def test_max_retries_recovers_transient_fault(
        self, data_file, batch_file, capsys
    ):
        from repro.testing import FaultSpec, inject_faults

        with inject_faults(FaultSpec("counting.nfta", scope=1, times=1)):
            code = main(
                ["--data", data_file, "--batch", batch_file,
                 "--seed", "7", "--max-retries", "1"]
            )
        assert code == 0
        capsys.readouterr()

    def test_single_query_timeout_flag(self, data_file, capsys):
        code = main(
            ["--data", data_file, "--query", "Q :- R1(x,y), R2(y,z)",
             "--timeout", "60"]
        )
        assert code == 0
        assert "Pr_H(Q) =" in capsys.readouterr().out


class TestTelemetryFlags:
    @pytest.fixture
    def data_file(self, tmp_path):
        path = tmp_path / "facts.csv"
        path.write_text(CSV)
        return str(path)

    @pytest.fixture
    def batch_file(self, tmp_path):
        path = tmp_path / "batch.json"
        path.write_text(BATCH_JSON)
        return str(path)

    def test_profile_single_query(self, data_file, capsys):
        code = main(
            ["--data", data_file, "--query", "Q :- R1(x,y), R2(y,z)",
             "--method", "fpras", "--seed", "3", "--profile"]
        )
        assert code == 0
        out = capsys.readouterr().out
        assert "profile:" in out
        assert "route.fpras" in out
        assert "counters:" in out

    def test_profile_batch_prints_breakdown(
        self, data_file, batch_file, capsys
    ):
        code = main(
            ["eval", "--data", data_file, "--batch", batch_file,
             "--seed", "7", "--workers", "2", "--profile"]
        )
        assert code == 0
        out = capsys.readouterr().out
        assert "profile:" in out
        assert "item" in out
        assert "span coverage:" in out

    def test_metrics_out_writes_trace_and_summary_reads_it(
        self, data_file, batch_file, tmp_path, capsys
    ):
        trace_path = str(tmp_path / "trace.jsonl")
        code = main(
            ["eval", "--data", data_file, "--batch", batch_file,
             "--seed", "7", "--workers", "2",
             "--metrics-out", trace_path]
        )
        assert code == 0
        assert f"trace:   written to {trace_path}" in capsys.readouterr().out

        from repro.obs.export import read_trace, summarize_trace

        with open(trace_path, encoding="utf-8") as stream:
            records = read_trace(stream)
        kinds = {record["type"] for record in records}
        assert {"meta", "item", "span"} <= kinds
        summary = summarize_trace(records)
        assert summary["items"] == 3
        assert summary["coverage"] is not None
        assert summary["coverage"] > 0.0

        code = main(["trace-summary", trace_path])
        assert code == 0
        out = capsys.readouterr().out
        assert "phase" in out and "item" in out
        assert "span coverage" in out

    def test_trace_summary_json(self, data_file, batch_file, tmp_path, capsys):
        trace_path = str(tmp_path / "trace.jsonl")
        assert main(
            ["eval", "--data", data_file, "--batch", batch_file,
             "--seed", "7", "--metrics-out", trace_path]
        ) == 0
        capsys.readouterr()
        assert main(["trace-summary", trace_path, "--json"]) == 0
        import json as json_module

        payload = json_module.loads(capsys.readouterr().out)
        assert payload["items"] == 3
        assert "phases" in payload and "counters" in payload

    def test_trace_summary_missing_file(self, capsys):
        assert main(["trace-summary", "/nonexistent/trace.jsonl"]) == 1
        assert "error:" in capsys.readouterr().err

    def test_batch_json_payload_includes_telemetry(
        self, data_file, batch_file, capsys
    ):
        import json as json_module

        code = main(
            ["eval", "--data", data_file, "--batch", batch_file,
             "--seed", "7", "--profile", "--json"]
        )
        assert code == 0
        payload = json_module.loads(capsys.readouterr().out)
        assert "telemetry" in payload
        assert payload["telemetry"]["items"] == 3
        assert payload["telemetry"]["coverage"] > 0.0

    def test_no_profile_no_trace_output(self, data_file, capsys):
        code = main(
            ["--data", data_file, "--query", "Q :- R1(x,y), R2(y,z)"]
        )
        assert code == 0
        out = capsys.readouterr().out
        assert "profile:" not in out
        assert "trace:" not in out


class TestArgumentValidation:
    """Malformed flags are usage errors: argparse exit code 2, with a
    message naming the flag, before any file is opened."""

    @pytest.fixture
    def data_file(self, tmp_path):
        path = tmp_path / "facts.csv"
        path.write_text(CSV)
        return str(path)

    @pytest.fixture
    def batch_file(self, tmp_path):
        path = tmp_path / "batch.json"
        path.write_text(BATCH_JSON)
        return str(path)

    @pytest.mark.parametrize(
        "flags",
        [
            ["--workers", "0"],
            ["--workers", "-2"],
            ["--workers", "two"],
            ["--timeout", "-1"],
            ["--timeout", "0"],
            ["--timeout", "nan"],
            ["--epsilon", "0"],
            ["--epsilon", "-0.1"],
            ["--epsilon", "1.5"],
            ["--repetitions", "0"],
            ["--max-retries", "-1"],
            ["--memory-limit", "0", "--isolation", "process"],
        ],
    )
    def test_rejected_with_exit_code_2(
        self, data_file, batch_file, flags, capsys
    ):
        with pytest.raises(SystemExit) as exited:
            main(
                ["--data", data_file, "--batch", batch_file] + flags
            )
        assert exited.value.code == 2
        err = capsys.readouterr().err
        assert flags[0] in err

    def test_messages_name_the_offending_value(self, data_file, capsys):
        with pytest.raises(SystemExit):
            main(["--data", data_file, "--query", "R(x)",
                  "--workers", "0"])
        assert "positive integer" in capsys.readouterr().err

    def test_resume_requires_journal(self, data_file, batch_file, capsys):
        with pytest.raises(SystemExit) as exited:
            main(["--data", data_file, "--batch", batch_file, "--resume"])
        assert exited.value.code == 2
        assert "--journal" in capsys.readouterr().err

    def test_memory_limit_requires_process_isolation(
        self, data_file, batch_file, capsys
    ):
        with pytest.raises(SystemExit) as exited:
            main(["--data", data_file, "--batch", batch_file,
                  "--memory-limit", "1000000"])
        assert exited.value.code == 2
        assert "--isolation" in capsys.readouterr().err

    @pytest.mark.parametrize(
        "flags",
        [
            ["--journal", "j.wal"],
            ["--cache-dir", "cache"],
            ["--isolation", "process"],
        ],
    )
    def test_batch_only_flags_rejected_for_single_query(
        self, data_file, flags, capsys
    ):
        with pytest.raises(SystemExit) as exited:
            main(["--data", data_file, "--query", "R(x)"] + flags)
        assert exited.value.code == 2
        assert "--batch" in capsys.readouterr().err

    def test_valid_flags_still_accepted(self, data_file, capsys):
        code = main(
            ["--data", data_file, "--query", "Q :- R1(x,y), R2(y,z)",
             "--epsilon", "0.3", "--timeout", "30", "--seed", "1"]
        )
        assert code == 0
        capsys.readouterr()


class TestDurabilityFlags:
    @pytest.fixture
    def data_file(self, tmp_path):
        path = tmp_path / "facts.csv"
        path.write_text(CSV)
        return str(path)

    @pytest.fixture
    def batch_file(self, tmp_path):
        path = tmp_path / "batch.json"
        path.write_text(BATCH_JSON)
        return str(path)

    def test_journal_then_resume_round_trip(
        self, data_file, batch_file, tmp_path, capsys
    ):
        journal = str(tmp_path / "batch.wal")
        assert main(
            ["--data", data_file, "--batch", batch_file,
             "--seed", "7", "--journal", journal]
        ) == 0
        first = [
            line for line in capsys.readouterr().out.splitlines()
            if line.startswith("[")
        ]
        assert main(
            ["--data", data_file, "--batch", batch_file,
             "--seed", "7", "--journal", journal, "--resume"]
        ) == 0
        out = capsys.readouterr().out
        resumed = [
            line for line in out.splitlines() if line.startswith("[")
        ]
        assert resumed == first
        assert "resumed: 3 of 3 items replayed" in out

    def test_resume_against_wrong_seed_is_an_error(
        self, data_file, batch_file, tmp_path, capsys
    ):
        journal = str(tmp_path / "batch.wal")
        assert main(
            ["--data", data_file, "--batch", batch_file,
             "--seed", "7", "--journal", journal]
        ) == 0
        capsys.readouterr()
        code = main(
            ["--data", data_file, "--batch", batch_file,
             "--seed", "8", "--journal", journal, "--resume"]
        )
        assert code == 1
        assert "different batch" in capsys.readouterr().err

    def test_json_payload_marks_replayed_items(
        self, data_file, batch_file, tmp_path, capsys
    ):
        import json as json_module

        journal = str(tmp_path / "batch.wal")
        assert main(
            ["--data", data_file, "--batch", batch_file,
             "--seed", "7", "--journal", journal]
        ) == 0
        capsys.readouterr()
        assert main(
            ["--data", data_file, "--batch", batch_file,
             "--seed", "7", "--journal", journal, "--resume", "--json"]
        ) == 0
        payload = json_module.loads(capsys.readouterr().out)
        assert all(r["replayed"] for r in payload["results"])

    def test_cache_dir_persists_across_runs(
        self, data_file, batch_file, tmp_path, capsys
    ):
        cache_dir = str(tmp_path / "cache")
        for _ in range(2):
            assert main(
                ["--data", data_file, "--batch", batch_file,
                 "--seed", "7", "--cache-dir", cache_dir]
            ) == 0
            capsys.readouterr()
        from repro.core.diskcache import DiskCache

        assert len(DiskCache(cache_dir)) > 0

    def test_process_isolation_end_to_end(
        self, data_file, batch_file, capsys
    ):
        import multiprocessing

        if "fork" not in multiprocessing.get_all_start_methods():
            pytest.skip("needs fork")
        assert main(
            ["--data", data_file, "--batch", batch_file,
             "--seed", "7", "--workers", "2", "--isolation", "process"]
        ) == 0
        isolated = [
            line for line in capsys.readouterr().out.splitlines()
            if line.startswith("[")
        ]
        assert main(
            ["--data", data_file, "--batch", batch_file,
             "--seed", "7", "--workers", "2"]
        ) == 0
        threaded = [
            line for line in capsys.readouterr().out.splitlines()
            if line.startswith("[")
        ]
        assert isolated == threaded


class TestLoadErrorProvenance:
    """Broken input files are named, with the offending record."""

    def test_csv_error_names_file_and_row(self, tmp_path, capsys):
        path = tmp_path / "broken.csv"
        path.write_text("R1,1/2,a,b\nR2,not-a-probability,b,c\n")
        code = main(["--data", str(path), "--query", "Q :- R1(x,y)"])
        assert code == 1
        err = capsys.readouterr().err
        assert "broken.csv" in err
        assert "row 2" in err
        assert "not-a-probability" in err

    def test_batch_error_names_file_and_entry(self, tmp_path, capsys):
        data = tmp_path / "facts.csv"
        data.write_text(CSV)
        batch = tmp_path / "broken-batch.json"
        batch.write_text('["Q :- R1(x,y)", {"method": "auto"}]')
        code = main(["--data", str(data), "--batch", str(batch)])
        assert code == 1
        err = capsys.readouterr().err
        assert "broken-batch.json" in err
        assert "entry 1" in err

    def test_query_file_error_names_file(self, tmp_path, capsys):
        data = tmp_path / "facts.csv"
        data.write_text(CSV)
        query = tmp_path / "broken-query.txt"
        query.write_text("Q :- R1((((")
        code = main(
            ["--data", str(data), "--query-file", str(query)]
        )
        assert code == 1
        assert "broken-query.txt" in capsys.readouterr().err


class TestServeAndCacheStatsCommands:
    """Flag validation and output for the ``serve`` and
    ``cache-stats`` subcommands (the daemon itself is exercised in
    the ``-m serve`` tier)."""

    @pytest.fixture
    def data_file(self, tmp_path):
        path = tmp_path / "facts.csv"
        path.write_text(CSV)
        return str(path)

    @pytest.mark.parametrize(
        "flags",
        [
            ["--memory-limit", "1000000"],  # needs process isolation
            ["--shed-thresholds", "0.5,high,0.9"],
            ["--epsilon", "1.5"],
            ["--max-concurrency", "0"],
            ["--port", "-1"],
            ["--drain-deadline", "0"],
        ],
    )
    def test_serve_rejects_bad_flags_with_exit_code_2(
        self, data_file, flags, capsys
    ):
        with pytest.raises(SystemExit) as exited:
            main(["serve", "--data", data_file] + flags)
        assert exited.value.code == 2
        assert flags[0] in capsys.readouterr().err

    def test_serve_requires_data(self, capsys):
        with pytest.raises(SystemExit) as exited:
            main(["serve"])
        assert exited.value.code == 2
        assert "--data" in capsys.readouterr().err

    def test_serve_missing_data_file_is_a_runtime_error(
        self, tmp_path, capsys
    ):
        code = main(
            ["serve", "--data", str(tmp_path / "nope.csv")]
        )
        assert code == 1
        assert "error:" in capsys.readouterr().err

    def test_cache_stats_text_output(self, tmp_path, capsys):
        from repro.core.diskcache import DiskCache

        cache = DiskCache(tmp_path / "tier")
        cache.store(("cli", "stats"), {"payload": 1})
        assert main(["cache-stats", str(tmp_path / "tier")]) == 0
        out = capsys.readouterr().out
        assert "records:     1" in out
        assert "quarantined: 0" in out

    def test_cache_stats_json_output(self, tmp_path, capsys):
        import json as json_module

        from repro.core.diskcache import DiskCache

        cache = DiskCache(tmp_path / "tier")
        cache.store(("cli", "stats"), {"payload": 1})
        assert main(
            ["cache-stats", str(tmp_path / "tier"), "--json"]
        ) == 0
        stats = json_module.loads(capsys.readouterr().out)
        assert stats["records"] == 1
        assert stats["quarantined"] == 0
        assert stats["bytes"] > 0

    def test_exit_drained_constant_is_exported(self):
        from repro.cli import EXIT_DRAINED

        assert EXIT_DRAINED == 5


EDGES_CSV = """\
relation,probability,constant1,constant2
a,1/2,s,u
a,1/3,s,v
b,2/3,u,t
b,3/4,v,t
c,1/2,u,v
"""


class TestRPQ:
    @pytest.fixture
    def edges_file(self, tmp_path):
        path = tmp_path / "edges.csv"
        path.write_text(EDGES_CSV)
        return str(path)

    def test_rpq_exact_prints_rational(self, edges_file, capsys):
        code = main(
            ["eval", "--data", edges_file, "--rpq", "a b",
             "--source", "s", "--target", "t", "--method", "exact"]
        )
        assert code == 0
        out = capsys.readouterr().out
        assert "Pr_G = 0.5 (1/2)" in out
        assert "method:  exact (exact)" in out

    def test_rpq_auto_route(self, edges_file, capsys):
        code = main(
            ["eval", "--data", edges_file, "--rpq", "a (c b | b)",
             "--source", "s", "--target", "t"]
        )
        assert code == 0
        assert "(13/24)" in capsys.readouterr().out

    @pytest.mark.parametrize(
        "argv",
        [
            # --rpq needs both endpoints.
            ["--rpq", "a b", "--source", "s"],
            ["--rpq", "a b", "--target", "t"],
            # Graph and relational surfaces don't mix.
            ["--rpq", "a b", "--source", "s", "--target", "t",
             "--reliability"],
            ["--query", "Q :- a(x, y)", "--method", "exact"],
            ["--query", "Q :- a(x, y)", "--source", "s"],
            # karp-luby is lineage-only, not an RPQ method.
            ["--rpq", "a b", "--source", "s", "--target", "t",
             "--method", "karp-luby"],
        ],
        ids=["no-target", "no-source", "reliability", "exact-no-rpq",
             "source-no-rpq", "bad-method"],
    )
    def test_usage_errors_exit_2(self, edges_file, argv):
        with pytest.raises(SystemExit) as failure:
            main(["eval", "--data", edges_file, *argv])
        assert failure.value.code == 2

    def test_rpq_rejects_nonbinary_facts(self, tmp_path, capsys):
        path = tmp_path / "facts.csv"
        path.write_text("relation,probability,constant1\nR,1/2,a\n")
        code = main(
            ["eval", "--data", str(path), "--rpq", "R",
             "--source", "a", "--target", "a"]
        )
        assert code == 1
        assert "binary" in capsys.readouterr().err

    def test_batch_rpq_items(self, edges_file, tmp_path, capsys):
        batch = tmp_path / "batch.json"
        batch.write_text(
            '["Q :- a(x, y), b(y, z)",\n'
            ' {"query": "a b", "task": "rpq",'
            ' "source": "s", "target": "t"},\n'
            ' {"query": "(a|c)* b", "task": "rpq", "source": "s",'
            ' "target": "t", "method": "fpras"}]\n'
        )
        outputs = []
        for workers in ("1", "4"):
            assert main(
                ["eval", "--data", edges_file, "--batch", str(batch),
                 "--workers", workers, "--seed", "7"]
            ) == 0
            lines = capsys.readouterr().out.splitlines()
            outputs.append(
                [line for line in lines if line.startswith("[")]
            )
        assert outputs[0] == outputs[1]
        assert outputs[0][0].startswith("[0] Pr =")
        assert outputs[0][1].startswith("[1] Pr_G = 0.5 ")
        assert "s -[a b]-> t" in outputs[0][1]
        assert outputs[0][2].startswith("[2] Pr_G =")

    def test_batch_rpq_entry_requires_endpoints(
        self, edges_file, tmp_path, capsys
    ):
        batch = tmp_path / "batch.json"
        batch.write_text(
            '[{"query": "a b", "task": "rpq", "source": "s"}]'
        )
        code = main(
            ["eval", "--data", edges_file, "--batch", str(batch)]
        )
        assert code == 1
        err = capsys.readouterr().err
        assert "rpq items require" in err and "target" in err

    def test_batch_rpq_entry_rejects_unknown_fields(
        self, edges_file, tmp_path, capsys
    ):
        batch = tmp_path / "batch.json"
        batch.write_text(
            '[{"query": "a b", "task": "rpq", "source": "s",'
            ' "target": "t", "nodes": ["s"]}]'
        )
        code = main(
            ["eval", "--data", edges_file, "--batch", str(batch)]
        )
        assert code == 1
        assert "unknown fields" in capsys.readouterr().err
