"""Tests for workload generators."""

from fractions import Fraction

import pytest

from repro.db.semantics import satisfies
from repro.errors import ReproError
from repro.queries.builders import path_query, triangle_query
from repro.workloads.graphs import (
    complete_layered_path_instance,
    layered_path_instance,
    random_binary_instance,
)
from repro.workloads.instances import (
    random_instance_for_query,
    random_probabilities,
    uniform_half,
)


class TestLayeredPaths:
    def test_always_satisfiable(self):
        for seed in range(5):
            instance = layered_path_instance(3, 2, 0.3, seed=seed)
            assert satisfies(instance, path_query(3))

    def test_relations_match_query(self):
        instance = layered_path_instance(4, 2, 0.5, seed=0)
        assert instance.relation_names <= {"R1", "R2", "R3", "R4"}

    def test_complete_instance_size(self):
        instance = complete_layered_path_instance(3, 2)
        assert len(instance) == 3 * 4

    def test_deterministic_by_seed(self):
        a = layered_path_instance(3, 3, 0.5, seed=42)
        b = layered_path_instance(3, 3, 0.5, seed=42)
        assert a == b

    def test_invalid_parameters(self):
        with pytest.raises(ReproError):
            layered_path_instance(0, 2)
        with pytest.raises(ReproError):
            layered_path_instance(2, 2, edge_probability=2.0)


class TestRandomBinary:
    def test_edge_counts(self):
        instance = random_binary_instance(3, 4, 5, seed=1)
        for r in ("R1", "R2", "R3"):
            assert len(instance.facts_for_relation(r)) == 5

    def test_too_many_edges(self):
        with pytest.raises(ReproError):
            random_binary_instance(1, 2, 5, seed=0)


class TestRandomInstanceForQuery:
    def test_schema_matches(self):
        query = triangle_query()
        instance = random_instance_for_query(query, 3, 4, seed=0)
        assert instance.relation_names <= set(query.relation_names)

    def test_satisfiability_guarantee(self):
        for seed in range(5):
            query = path_query(3)
            instance = random_instance_for_query(query, 2, 1, seed=seed)
            assert satisfies(instance, query)

    def test_without_guarantee_flag(self):
        query = path_query(3)
        instance = random_instance_for_query(
            query, 5, 1, seed=0, ensure_satisfiable=False
        )
        # Just shape-checking; satisfaction is not promised here.
        assert all(f.arity == 2 for f in instance)

    def test_invalid(self):
        with pytest.raises(ReproError):
            random_instance_for_query(path_query(1), 0, 1)


class TestProbabilities:
    def test_random_probabilities_in_range(self):
        query = path_query(2)
        instance = random_instance_for_query(query, 3, 4, seed=0)
        pdb = random_probabilities(instance, seed=1, max_denominator=6)
        for fact in instance:
            p = pdb.probability(fact)
            assert 0 < p < 1
            assert p.denominator <= 6

    def test_extremes_flag(self):
        query = path_query(2)
        instance = random_instance_for_query(query, 4, 16, seed=0)
        pdb = random_probabilities(
            instance, seed=3, include_extremes=True
        )
        values = {pdb.probability(f) for f in instance}
        assert Fraction(0) in values or Fraction(1) in values

    def test_uniform_half(self):
        query = path_query(1)
        instance = random_instance_for_query(query, 2, 2, seed=0)
        pdb = uniform_half(instance)
        assert all(
            pdb.probability(f) == Fraction(1, 2) for f in instance
        )

    def test_invalid_denominator(self):
        query = path_query(1)
        instance = random_instance_for_query(query, 2, 2, seed=0)
        with pytest.raises(ReproError):
            random_probabilities(instance, max_denominator=1)


class TestWarehouse:
    def test_query_shape(self):
        from repro.decomposition import is_acyclic
        from repro.queries.properties import is_hierarchical
        from repro.workloads.warehouse import warehouse_query

        query = warehouse_query()
        assert query.is_self_join_free
        assert is_acyclic(query)
        assert not is_hierarchical(query)

    def test_instance_schema(self):
        from repro.workloads.warehouse import warehouse_instance

        pdb = warehouse_instance(seed=0)
        names = {f.relation for f in pdb}
        assert names == {"Sales", "Customer", "Product"}
        for fact in pdb:
            assert 0 <= pdb.probability(fact) <= 1

    def test_deterministic(self):
        from repro.workloads.warehouse import warehouse_instance

        assert warehouse_instance(seed=3) == warehouse_instance(seed=3)

    def test_invalid(self):
        from repro.errors import ReproError
        from repro.workloads.warehouse import warehouse_instance

        with pytest.raises(ReproError):
            warehouse_instance(customers=0)

    def test_end_to_end(self):
        from repro.core.exact import exact_probability
        from repro.core.pqe_estimate import pqe_estimate
        from repro.workloads.warehouse import (
            warehouse_instance,
            warehouse_query,
        )

        query = warehouse_query()
        pdb = warehouse_instance(customers=2, products=2, sales=3, seed=1)
        truth = float(exact_probability(query, pdb, method="enumerate"))
        result = pqe_estimate(query, pdb, method="exact-weighted")
        assert result.estimate == pytest.approx(truth, abs=1e-12)
