"""Tests for the Dalvi–Suciu safe-plan exact evaluator."""

import random
from fractions import Fraction

import pytest
from hypothesis import given, settings
from hypothesis import strategies as st

from repro.core.exact import exact_probability
from repro.db.fact import Fact
from repro.db.probabilistic import ProbabilisticDatabase
from repro.errors import QueryError, SelfJoinError
from repro.queries.builders import (
    hierarchical_star_query,
    path_query,
    star_query,
)
from repro.queries.parser import parse_query
from repro.queries.safe_plan import safe_plan_probability
from repro.workloads.instances import (
    random_instance_for_query,
    random_probabilities,
)


class TestValidation:
    def test_rejects_self_join(self):
        q = parse_query("R(x, y), R(y, z)")
        pdb = ProbabilisticDatabase({Fact("R", ("a", "b")): "1/2"})
        with pytest.raises(SelfJoinError):
            safe_plan_probability(q, pdb)

    def test_rejects_unsafe_query(self):
        q = parse_query("R(x), S(x, y), T(y)")
        pdb = ProbabilisticDatabase(
            {
                Fact("R", ("a",)): "1/2",
                Fact("S", ("a", "b")): "1/2",
                Fact("T", ("b",)): "1/2",
            }
        )
        with pytest.raises(QueryError):
            safe_plan_probability(q, pdb)

    def test_rejects_3path(self):
        q = path_query(3)
        pdb = ProbabilisticDatabase(
            {Fact(f"R{i}", ("a", "b")): "1/2" for i in (1, 2, 3)}
        )
        with pytest.raises(QueryError):
            safe_plan_probability(q, pdb)


class TestCorrectness:
    def test_single_atom(self):
        q = parse_query("R(x, y)")
        pdb = ProbabilisticDatabase(
            {
                Fact("R", ("a", "b")): Fraction(1, 2),
                Fact("R", ("c", "d")): Fraction(1, 3),
            }
        )
        # 1 − (1/2)(2/3) = 2/3.
        assert safe_plan_probability(q, pdb) == Fraction(2, 3)

    def test_no_facts(self):
        q = parse_query("R(x)")
        pdb = ProbabilisticDatabase({Fact("S", ("a",)): "1/2"})
        assert safe_plan_probability(q, pdb) == 0

    def test_disconnected_query_multiplies(self):
        q = parse_query("R(x), S(y)")
        pdb = ProbabilisticDatabase(
            {Fact("R", ("a",)): "1/2", Fact("S", ("b",)): "1/3"}
        )
        assert safe_plan_probability(q, pdb) == Fraction(1, 6)

    @given(st.integers(min_value=0, max_value=10_000))
    @settings(max_examples=20, deadline=None)
    def test_matches_enumeration_on_safe_queries(self, seed):
        rng = random.Random(seed)
        query = rng.choice(
            [
                star_query(2),
                star_query(3),
                hierarchical_star_query(2),
                path_query(2),
                parse_query("R(x, y), S(x)"),
            ]
        )
        instance = random_instance_for_query(
            query, domain_size=2, facts_per_relation=2, seed=seed
        )
        if len(instance) > 11:
            return
        pdb = random_probabilities(
            instance, seed=seed, max_denominator=4, include_extremes=True
        )
        assert safe_plan_probability(query, pdb) == exact_probability(
            query, pdb, method="enumerate"
        )

    def test_polynomial_scaling_sanity(self):
        # The safe plan must handle instances far beyond enumeration.
        query = star_query(3)
        instance = random_instance_for_query(
            query, domain_size=10, facts_per_relation=60, seed=0
        )
        pdb = random_probabilities(instance, seed=1)
        value = safe_plan_probability(query, pdb)
        assert 0 <= value <= 1

    def test_repeated_variable_atom(self):
        q = parse_query("R(x, x)")
        pdb = ProbabilisticDatabase(
            {
                Fact("R", ("a", "a")): Fraction(1, 2),
                Fact("R", ("a", "b")): Fraction(1, 2),
            }
        )
        assert safe_plan_probability(q, pdb) == exact_probability(
            q, pdb, method="enumerate"
        )
