"""Unit tests for labelled trees."""

import pytest

from repro.automata.trees import LabeledTree, leaf, path_tree


def _example() -> LabeledTree:
    #        a
    #       / \
    #      b   c
    #      |
    #      d
    return LabeledTree(
        "a",
        (
            LabeledTree("b", (leaf("d"),)),
            leaf("c"),
        ),
    )


class TestBasics:
    def test_size(self):
        assert _example().size == 4
        assert leaf("x").size == 1

    def test_depth(self):
        assert _example().depth == 2
        assert leaf("x").depth == 0

    def test_is_leaf(self):
        assert leaf("x").is_leaf
        assert not _example().is_leaf

    def test_max_arity(self):
        assert _example().max_arity() == 2
        assert leaf("x").max_arity() == 0

    def test_equality_structural(self):
        assert _example() == _example()
        assert _example() != leaf("a")

    def test_hashable(self):
        assert len({_example(), _example()}) == 1

    def test_str(self):
        assert str(_example()) == "a(b(d), c)"


class TestTraversal:
    def test_preorder_labels(self):
        assert list(_example().labels_preorder()) == ["a", "b", "d", "c"]

    def test_nodes_preorder_count(self):
        assert len(list(_example().nodes_preorder())) == 4


class TestPaths:
    def test_paths_prefix_closed(self):
        paths = set(_example().paths())
        # The paper's tree domain: every prefix of a path is a path.
        for path in paths:
            for i in range(len(path)):
                assert path[:i] in paths

    def test_paths_count_equals_size(self):
        tree = _example()
        assert len(set(tree.paths())) == tree.size

    def test_root_is_empty_path(self):
        assert () in set(leaf("x").paths())

    def test_child_indices_one_based(self):
        paths = set(_example().paths())
        assert (1,) in paths and (2,) in paths
        assert (1, 1) in paths
        assert (0,) not in paths


class TestPathTree:
    def test_chain(self):
        tree = path_tree(["a", "b", "c"])
        assert tree.size == 3
        assert tree.depth == 2
        assert list(tree.labels_preorder()) == ["a", "b", "c"]
        assert tree.max_arity() == 1

    def test_single(self):
        assert path_tree(["x"]) == leaf("x")

    def test_empty_rejected(self):
        with pytest.raises(ValueError):
            path_tree([])
