"""Tests for the PQEEngine facade and its routing logic."""

import pytest

from repro.core.estimator import PQEEngine, PQEPlan
from repro.db.fact import Fact
from repro.db.probabilistic import ProbabilisticDatabase
from repro.errors import ReproError
from repro.queries.builders import path_query, star_query
from repro.queries.parser import parse_query
from repro.workloads.instances import (
    random_instance_for_query,
    random_probabilities,
)


def _pdb_for(query, seed=0, domain=2, facts=2):
    instance = random_instance_for_query(
        query, domain_size=domain, facts_per_relation=facts, seed=seed
    )
    return random_probabilities(instance, seed=seed, max_denominator=4)


class TestRouting:
    def test_safe_query_routes_to_lifted(self):
        engine = PQEEngine(seed=0)
        answer = engine.probability(star_query(2), _pdb_for(star_query(2)))
        assert answer.method == "lifted"
        assert answer.route == "lifted"
        assert answer.exact
        assert answer.rational is not None

    def test_unsafe_small_routes_to_lineage(self):
        engine = PQEEngine(seed=0)
        answer = engine.probability(path_query(3), _pdb_for(path_query(3)))
        assert answer.method == "lineage-exact"
        assert answer.exact

    def test_unsafe_large_lineage_routes_to_fpras(self):
        engine = PQEEngine(seed=0, lineage_budget=2)
        answer = engine.probability(path_query(3), _pdb_for(path_query(3)))
        assert answer.method == "fpras"

    def test_self_join_routes_to_lineage(self):
        engine = PQEEngine(seed=0)
        query = parse_query("R(x, y), R(y, z)")
        pdb = ProbabilisticDatabase(
            {
                Fact("R", ("a", "b")): "1/2",
                Fact("R", ("b", "c")): "1/2",
            }
        )
        answer = engine.probability(query, pdb)
        assert answer.method == "lineage-exact"

    def test_self_join_large_routes_to_karp_luby(self):
        engine = PQEEngine(seed=0, lineage_budget=0)
        query = parse_query("R(x, y), R(y, z)")
        pdb = ProbabilisticDatabase(
            {
                Fact("R", ("a", "b")): "1/2",
                Fact("R", ("b", "c")): "1/2",
            }
        )
        answer = engine.probability(query, pdb)
        assert answer.method == "karp-luby"


class TestMethodAgreement:
    def test_all_methods_agree(self):
        query = path_query(3)
        pdb = _pdb_for(query, seed=3, facts=2)
        if len(pdb) > 10:
            pytest.skip("instance too large for enumeration")
        engine = PQEEngine(seed=1, epsilon=0.2, repetitions=3)
        truth = engine.probability(query, pdb, method="enumerate").value
        lineage = engine.probability(query, pdb, method="lineage-exact")
        assert lineage.value == pytest.approx(truth, abs=1e-12)
        fpras = engine.probability(query, pdb, method="fpras")
        assert fpras.value == pytest.approx(truth, rel=0.4, abs=0.02)
        kl = engine.probability(query, pdb, method="karp-luby")
        assert kl.value == pytest.approx(truth, rel=0.4, abs=0.02)

    def test_explicit_safe_plan(self):
        query = star_query(2)
        pdb = _pdb_for(query, seed=5)
        engine = PQEEngine(seed=0)
        sp = engine.probability(query, pdb, method="safe-plan")
        enum = engine.probability(query, pdb, method="enumerate")
        assert sp.rational == enum.rational

    def test_explicit_lifted(self):
        query = star_query(2)
        pdb = _pdb_for(query, seed=5)
        engine = PQEEngine(seed=0)
        lifted = engine.probability(query, pdb, method="lifted")
        enum = engine.probability(query, pdb, method="enumerate")
        assert lifted.method == "lifted"
        assert lifted.rational == enum.rational


class TestUniformReliability:
    def test_auto_is_exact_integer(self):
        query = path_query(2)
        instance = random_instance_for_query(
            query, domain_size=2, facts_per_relation=2, seed=2
        )
        engine = PQEEngine(seed=0)
        answer = engine.uniform_reliability(query, instance)
        assert answer.exact
        assert answer.rational is not None
        assert answer.rational.denominator == 1

    def test_matches_enumeration(self):
        query = path_query(2)
        instance = random_instance_for_query(
            query, domain_size=2, facts_per_relation=2, seed=4
        )
        engine = PQEEngine(seed=0)
        auto = engine.uniform_reliability(query, instance)
        enum = engine.uniform_reliability(query, instance, method="enumerate")
        assert auto.rational == enum.rational

    def test_fpras_route(self):
        query = path_query(2)
        instance = random_instance_for_query(
            query, domain_size=2, facts_per_relation=2, seed=4
        )
        engine = PQEEngine(seed=0, epsilon=0.2, repetitions=3)
        answer = engine.uniform_reliability(query, instance, method="fpras")
        enum = engine.uniform_reliability(query, instance, method="enumerate")
        assert answer.value == pytest.approx(
            enum.value, rel=0.4, abs=0.5
        )


class TestValidation:
    def test_invalid_epsilon(self):
        with pytest.raises(ReproError):
            PQEEngine(epsilon=0)

    def test_unknown_method(self):
        engine = PQEEngine()
        with pytest.raises(ReproError):
            engine.probability(
                path_query(1),
                ProbabilisticDatabase({Fact("R1", ("a", "b")): "1/2"}),
                method="bogus",
            )

    def test_unknown_ur_method(self):
        engine = PQEEngine()
        from repro.db.instance import DatabaseInstance

        with pytest.raises(ReproError):
            engine.uniform_reliability(
                path_query(1),
                DatabaseInstance([Fact("R1", ("a", "b"))]),
                method="bogus",
            )


class TestConditionalProbability:
    def test_conditioning_on_present_evidence(self):
        from fractions import Fraction

        query = path_query(2)
        r1 = Fact("R1", ("a", "b"))
        r2 = Fact("R2", ("b", "c"))
        pdb = ProbabilisticDatabase({r1: "1/2", r2: "1/3"})
        engine = PQEEngine(seed=0)
        # Pr(Q | R1 present) = Pr(R2) = 1/3.
        answer = engine.conditional_probability(
            query, pdb, present=[r1]
        )
        assert answer.rational == Fraction(1, 3)

    def test_conditioning_on_absent_evidence(self):
        query = path_query(2)
        r1 = Fact("R1", ("a", "b"))
        r2 = Fact("R2", ("b", "c"))
        pdb = ProbabilisticDatabase({r1: "1/2", r2: "1/3"})
        engine = PQEEngine(seed=0)
        answer = engine.conditional_probability(
            query, pdb, absent=[r1]
        )
        assert answer.value == 0

    def test_matches_bayes_on_brute_force(self):
        from fractions import Fraction

        query = path_query(2)
        pdb = _pdb_for(query, seed=6, facts=2)
        if len(pdb) > 10:
            return
        evidence = next(iter(pdb))
        engine = PQEEngine(seed=0)
        conditional = engine.conditional_probability(
            query, pdb, present=[evidence], method="enumerate"
        )
        # Bayes check: Pr(Q ∧ e) / Pr(e) over brute force.
        joint = Fraction(0)
        marginal = Fraction(0)
        from repro.db.instance import DatabaseInstance
        from repro.db.semantics import satisfies

        for subset in pdb.instance.subinstances():
            if evidence not in subset:
                continue
            weight = pdb.subinstance_probability(subset)
            marginal += weight
            if subset and satisfies(DatabaseInstance(subset), query):
                joint += weight
        expected = joint / marginal if marginal else Fraction(0)
        assert conditional.rational == expected


class TestMonteCarloRoute:
    def test_monte_carlo_method(self):
        query = path_query(2)
        pdb = ProbabilisticDatabase(
            {
                Fact("R1", ("a", "b")): "1/2",
                Fact("R2", ("b", "c")): "1/2",
            }
        )
        engine = PQEEngine(seed=0, epsilon=0.2)
        answer = engine.probability(query, pdb, method="monte-carlo")
        assert answer.method == "monte-carlo"
        assert not answer.exact
        assert answer.value == pytest.approx(0.25, abs=0.1)

    def test_fpras_weighted_method(self):
        query = path_query(3)
        pdb = _pdb_for(query, seed=2, facts=2)
        engine = PQEEngine(seed=0, epsilon=0.2, repetitions=3)
        weighted = engine.probability(query, pdb, method="fpras-weighted")
        truth = engine.probability(query, pdb, method="enumerate")
        assert weighted.method == "fpras-weighted"
        assert weighted.value == pytest.approx(
            truth.value, rel=0.4, abs=0.02
        )


class TestExplain:
    def test_unsafe_sjf_plan(self):
        query = path_query(3)
        pdb = _pdb_for(query, seed=1)
        plan = PQEEngine(seed=0).explain(query, pdb)
        assert plan.self_join_free
        assert plan.hierarchical is False
        assert plan.acyclic
        assert plan.hypertree_width == 1
        assert plan.nfta_transitions > 0
        assert plan.method in ("lineage-exact", "fpras")
        assert "non-hierarchical" in plan.describe()

    def test_safe_plan_route(self):
        query = star_query(2)
        pdb = _pdb_for(query, seed=2)
        plan = PQEEngine(seed=0).explain(query, pdb)
        assert plan.method == "lifted"
        assert plan.route == "lifted"
        assert plan.safety == "safe"
        assert plan.hierarchical is True
        assert "safety: safe" in plan.describe()

    def test_self_join_plan(self):
        query = parse_query("R(x, y), R(y, z)")
        pdb = ProbabilisticDatabase(
            {
                Fact("R", ("a", "b")): "1/2",
                Fact("R", ("b", "c")): "1/2",
            }
        )
        plan = PQEEngine(seed=0).explain(query, pdb)
        assert not plan.self_join_free
        assert plan.hierarchical is None
        assert plan.nfta_states is None
        assert plan.method == "lineage-exact"
        assert "has self-joins" in plan.describe()

    def test_over_budget_routes_to_fpras(self):
        query = path_query(3)
        pdb = _pdb_for(query, seed=3, facts=3)
        plan = PQEEngine(seed=0, lineage_budget=0).explain(query, pdb)
        assert plan.lineage_clauses is None
        assert plan.method == "fpras"
        assert "over budget" in plan.describe()

    def test_plan_matches_auto_route(self):
        # The plan's predicted method must match what auto actually runs.
        query = path_query(3)
        pdb = _pdb_for(query, seed=4)
        engine = PQEEngine(seed=0)
        plan = engine.explain(query, pdb)
        answer = engine.probability(query, pdb)
        assert answer.method == plan.method
