"""Tests for the lineage (intensional) subsystem."""

import random
from fractions import Fraction

import pytest
from hypothesis import given, settings
from hypothesis import strategies as st

from repro.core.exact import exact_probability
from repro.db.fact import Fact
from repro.db.instance import DatabaseInstance
from repro.db.probabilistic import ProbabilisticDatabase
from repro.db.semantics import satisfies
from repro.errors import LineageError, LineageSizeBudgetExceeded
from repro.lineage.build import build_lineage, lineage_clause_count
from repro.lineage.dnf import DNF, clause_probability
from repro.lineage.exact_wmc import dnf_probability
from repro.lineage.karp_luby import (
    karp_luby_probability,
    required_samples,
)
from repro.queries.builders import path_query, star_query
from repro.workloads.graphs import complete_layered_path_instance
from repro.workloads.instances import (
    random_instance_for_query,
    random_probabilities,
)


def _f(i):
    return Fact("R", (f"c{i}",))


class TestDNF:
    def test_basic_properties(self):
        formula = DNF([{_f(0), _f(1)}, {_f(1), _f(2)}])
        assert formula.num_clauses == 2
        assert formula.size == 4
        assert formula.variables == frozenset({_f(0), _f(1), _f(2)})

    def test_evaluate(self):
        formula = DNF([{_f(0), _f(1)}])
        assert formula.evaluate(frozenset({_f(0), _f(1), _f(5)}))
        assert not formula.evaluate(frozenset({_f(0)}))

    def test_false_formula(self):
        assert DNF([]).is_false()
        assert not DNF([]).evaluate(frozenset())

    def test_empty_clause_rejected(self):
        with pytest.raises(LineageError):
            DNF([frozenset()])

    def test_minimized_absorption(self):
        formula = DNF([{_f(0)}, {_f(0), _f(1)}, {_f(2)}])
        minimized = formula.minimized()
        assert minimized.num_clauses == 2
        assert frozenset({_f(0), _f(1)}) not in minimized.clauses

    def test_clause_probability(self):
        probs = {_f(0): Fraction(1, 2), _f(1): Fraction(1, 3)}
        assert clause_probability(
            frozenset({_f(0), _f(1)}), probs
        ) == Fraction(1, 6)


class TestBuildLineage:
    def test_path_clause_count_complete_instance(self):
        # Complete layered instance: width^(length+1) homomorphisms,
        # all with distinct witness sets.
        query = path_query(3)
        instance = complete_layered_path_instance(3, 2)
        formula = build_lineage(query, instance)
        assert formula.num_clauses == 2 ** 4

    def test_budget_enforced(self):
        query = path_query(3)
        instance = complete_layered_path_instance(3, 3)
        with pytest.raises(LineageSizeBudgetExceeded) as info:
            build_lineage(query, instance, budget=10)
        assert info.value.clause_count > 10

    def test_clause_count_streaming_matches(self):
        query = path_query(2)
        instance = complete_layered_path_instance(2, 3)
        assert lineage_clause_count(query, instance) == build_lineage(
            query, instance
        ).num_clauses

    def test_lineage_semantics(self):
        # φ(D') is true iff D' |= Q — on every subinstance.
        query = path_query(2)
        instance = random_instance_for_query(
            query, domain_size=2, facts_per_relation=2, seed=0
        )
        formula = build_lineage(query, instance)
        for subset in instance.subinstances():
            assert formula.evaluate(subset) == satisfies(
                DatabaseInstance(subset) if subset else DatabaseInstance(
                    [Fact("Z", ("z",))]
                ),
                query,
            )


class TestExactWMC:
    @given(st.integers(min_value=0, max_value=10_000))
    @settings(max_examples=15, deadline=None)
    def test_matches_enumeration(self, seed):
        rng = random.Random(seed)
        query = rng.choice([path_query(2), star_query(2), path_query(3)])
        instance = random_instance_for_query(
            query, domain_size=2, facts_per_relation=2, seed=seed
        )
        if len(instance) > 10:
            return
        pdb = random_probabilities(instance, seed=seed, max_denominator=4)
        lineage_based = exact_probability(query, pdb, method="lineage")
        enumerated = exact_probability(query, pdb, method="enumerate")
        assert lineage_based == enumerated

    def test_empty_formula_probability_zero(self):
        assert dnf_probability(DNF([]), {}) == 0

    def test_single_clause(self):
        probs = {_f(0): Fraction(1, 2), _f(1): Fraction(1, 3)}
        assert dnf_probability(
            DNF([{_f(0), _f(1)}]), probs
        ) == Fraction(1, 6)

    def test_independent_clauses(self):
        probs = {_f(0): Fraction(1, 2), _f(1): Fraction(1, 2)}
        # Pr[f0 ∨ f1] = 3/4.
        assert dnf_probability(
            DNF([{_f(0)}, {_f(1)}]), probs
        ) == Fraction(3, 4)

    def test_shared_variable_clauses(self):
        probs = {
            _f(0): Fraction(1, 2),
            _f(1): Fraction(1, 2),
            _f(2): Fraction(1, 2),
        }
        # Pr[(f0∧f1) ∨ (f1∧f2)] = Pr[f1]·Pr[f0 ∨ f2] = 1/2 · 3/4.
        assert dnf_probability(
            DNF([{_f(0), _f(1)}, {_f(1), _f(2)}]), probs
        ) == Fraction(3, 8)


class TestKarpLuby:
    def test_required_samples_monotone(self):
        assert required_samples(10, 0.1, 0.1) > required_samples(
            10, 0.5, 0.1
        )
        assert required_samples(100, 0.2, 0.1) > required_samples(
            10, 0.2, 0.1
        )

    def test_invalid_parameters(self):
        from repro.errors import EstimationError

        with pytest.raises(EstimationError):
            required_samples(10, 0.0, 0.1)

    def test_empty_formula(self):
        result = karp_luby_probability(DNF([]), {}, seed=0)
        assert result.estimate == 0.0

    @pytest.mark.parametrize("seed", range(5))
    def test_accuracy(self, seed):
        rng = random.Random(seed)
        query = path_query(2)
        instance = random_instance_for_query(
            query, domain_size=3, facts_per_relation=4, seed=seed
        )
        pdb = random_probabilities(instance, seed=seed, max_denominator=4)
        formula = build_lineage(query, instance)
        truth = float(dnf_probability(formula, pdb.probabilities))
        result = karp_luby_probability(
            formula, pdb.probabilities, epsilon=0.15, delta=0.05,
            seed=seed,
        )
        assert abs(result.estimate - truth) <= 0.25 * max(truth, 0.01)

    def test_zero_weight_facts(self):
        probs = {_f(0): Fraction(0)}
        result = karp_luby_probability(DNF([{_f(0)}]), probs, seed=0)
        assert result.estimate == 0.0

    def test_determinism(self):
        query = path_query(2)
        instance = random_instance_for_query(
            query, domain_size=2, facts_per_relation=3, seed=1
        )
        pdb = random_probabilities(instance, seed=1)
        formula = build_lineage(query, instance)
        a = karp_luby_probability(
            formula, pdb.probabilities, seed=5, samples=500
        )
        b = karp_luby_probability(
            formula, pdb.probabilities, seed=5, samples=500
        )
        assert a.estimate == b.estimate
