"""Unit tests for query variables and atoms."""

import pytest

from repro.errors import QueryError
from repro.queries.atoms import Atom, Variable, make_atom


class TestVariable:
    def test_equality_by_name(self):
        assert Variable("x") == Variable("x")
        assert Variable("x") != Variable("y")

    def test_hashable_and_interned_semantics(self):
        assert len({Variable("x"), Variable("x"), Variable("y")}) == 2

    def test_ordering(self):
        assert Variable("a") < Variable("b")
        assert sorted([Variable("z"), Variable("a")]) == [
            Variable("a"),
            Variable("z"),
        ]

    def test_str(self):
        assert str(Variable("x7")) == "x7"

    def test_empty_name_rejected(self):
        with pytest.raises(QueryError):
            Variable("")


class TestAtom:
    def test_construction_and_arity(self):
        atom = Atom("R", (Variable("x"), Variable("y")))
        assert atom.arity == 2
        assert atom.relation == "R"

    def test_variables_deduplicate(self):
        atom = Atom("R", (Variable("x"), Variable("x")))
        assert atom.variables == frozenset({Variable("x")})
        assert atom.arity == 2

    def test_str_rendering(self):
        assert str(make_atom("Edge", "u", "v")) == "Edge(u, v)"

    def test_equality_structural(self):
        assert make_atom("R", "x", "y") == make_atom("R", "x", "y")
        assert make_atom("R", "x", "y") != make_atom("R", "y", "x")
        assert make_atom("R", "x") != make_atom("S", "x")

    def test_iteration_order(self):
        atom = make_atom("R", "a", "b", "c")
        assert [v.name for v in atom] == ["a", "b", "c"]

    def test_empty_relation_rejected(self):
        with pytest.raises(QueryError):
            Atom("", (Variable("x"),))

    def test_non_variable_args_rejected(self):
        with pytest.raises(QueryError):
            Atom("R", ("x",))  # bare string, not a Variable

    def test_hashable(self):
        atoms = {make_atom("R", "x"), make_atom("R", "x"), make_atom("S", "x")}
        assert len(atoms) == 2
