"""Tests for unions of conjunctive queries."""

from fractions import Fraction

import pytest

from repro.db.fact import Fact
from repro.db.instance import DatabaseInstance
from repro.db.probabilistic import ProbabilisticDatabase
from repro.db.semantics import satisfies
from repro.errors import QueryError
from repro.queries.builders import path_query
from repro.queries.parser import parse_query
from repro.queries.ucq import (
    UnionQuery,
    ucq_probability,
    ucq_probability_karp_luby,
)
from repro.workloads.instances import (
    random_instance_for_query,
    random_probabilities,
)


def _rs_or_tu() -> UnionQuery:
    return UnionQuery(
        [parse_query("R(x, y), S(y, z)"), parse_query("T(u, v)")]
    )


class TestUnionQuery:
    def test_empty_rejected(self):
        with pytest.raises(QueryError):
            UnionQuery([])

    def test_satisfied_by_any_disjunct(self):
        ucq = _rs_or_tu()
        assert ucq.satisfied_by(DatabaseInstance([Fact("T", ("a", "b"))]))
        assert ucq.satisfied_by(
            DatabaseInstance(
                [Fact("R", ("a", "b")), Fact("S", ("b", "c"))]
            )
        )
        assert not ucq.satisfied_by(
            DatabaseInstance([Fact("R", ("a", "b"))])
        )

    def test_relation_names(self):
        assert _rs_or_tu().relation_names == frozenset(
            {"R", "S", "T"}
        )

    def test_str(self):
        assert "∨" in str(_rs_or_tu())

    def test_minimized_drops_contained_disjunct(self):
        # R(x,y),S(y,z) ⊑ R(a,b), so the union collapses to R(a,b).
        ucq = UnionQuery(
            [parse_query("R(x, y), S(y, z)"), parse_query("R(a, b)")]
        )
        minimal = ucq.minimized()
        assert len(minimal) == 1
        assert minimal.disjuncts[0] == parse_query("R(a, b)")

    def test_minimized_keeps_incomparable(self):
        assert len(_rs_or_tu().minimized()) == 2

    def test_minimized_equivalent_disjuncts_keep_one(self):
        ucq = UnionQuery(
            [parse_query("R(x, y)"), parse_query("R(u, v)")]
        )
        assert len(ucq.minimized()) == 1


class TestUCQProbability:
    def _pdb(self):
        return ProbabilisticDatabase(
            {
                Fact("R", ("a", "b")): Fraction(1, 2),
                Fact("S", ("b", "c")): Fraction(1, 3),
                Fact("T", ("u", "v")): Fraction(1, 4),
            }
        )

    def test_exact_value(self):
        # Pr[(R∧S) ∨ T] = 1 − (1 − 1/6)(1 − 1/4) = 3/8.
        assert ucq_probability(_rs_or_tu(), self._pdb()) == Fraction(3, 8)

    def test_exact_matches_enumeration(self):
        ucq = _rs_or_tu()
        pdb = self._pdb()
        total = Fraction(0)
        for subset in pdb.instance.subinstances():
            world = DatabaseInstance(subset) if subset else None
            holds = world is not None and ucq.satisfied_by(world)
            if holds:
                total += pdb.subinstance_probability(subset)
        assert ucq_probability(ucq, pdb) == total

    def test_karp_luby_accuracy(self):
        ucq = _rs_or_tu()
        pdb = self._pdb()
        truth = float(ucq_probability(ucq, pdb))
        result = ucq_probability_karp_luby(
            ucq, pdb, epsilon=0.1, delta=0.05, seed=3
        )
        assert abs(result.estimate - truth) < 0.05

    def test_single_disjunct_matches_cq_path(self):
        from repro.core.exact import exact_probability

        query = path_query(2)
        instance = random_instance_for_query(query, 2, 2, seed=1)
        pdb = random_probabilities(instance, seed=2)
        ucq = UnionQuery([query])
        assert ucq_probability(ucq, pdb) == exact_probability(query, pdb)

    def test_overlapping_disjuncts(self):
        # Shared relation: (R∧S) ∨ (R∧T); correlation through R.
        ucq = UnionQuery(
            [
                parse_query("R(x, y), S(y, z)"),
                parse_query("R(x, y), T(y, w)"),
            ]
        )
        pdb = ProbabilisticDatabase(
            {
                Fact("R", ("a", "b")): Fraction(1, 2),
                Fact("S", ("b", "c")): Fraction(1, 2),
                Fact("T", ("b", "d")): Fraction(1, 2),
            }
        )
        # Pr[R ∧ (S ∨ T)] = 1/2 · 3/4.
        assert ucq_probability(ucq, pdb) == Fraction(3, 8)

    def test_unsatisfiable_union(self):
        ucq = UnionQuery([parse_query("Z(q)")])
        assert ucq_probability(ucq, self._pdb()) == 0
