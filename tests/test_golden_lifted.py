"""Frozen golden corpus for the lifted fast path.

``tests/golden/lifted.json`` pins, for eight safe and shatterable
workloads, the lifted route's exact answer (as a ``p/q`` rational
string), the router's classification, and the shape of the emitted
plan.  Any drift in the classifier, the shattering/minimization rules,
or the plan evaluator fails here with a precise diff — the same
regression contract ``tests/golden/corpus.json`` provides for the
intensional pipeline.

Refreshing after an *intentional* semantic change::

    PYTHONPATH=src python -m pytest tests/test_golden_lifted.py \
        --update-golden

Review the diff like any other code change.
"""

from __future__ import annotations

import json
import pathlib
from fractions import Fraction

import pytest

from repro.core.estimator import PQEEngine
from repro.core.exact import exact_probability
from repro.queries.builders import hierarchical_star_query, star_query
from repro.queries.lifted import build_lifted_plan, classify_query
from repro.queries.parser import parse_query
from repro.workloads import (
    random_instance_for_query,
    random_probabilities,
    random_shatterable_query,
)

pytestmark = pytest.mark.lifted

GOLDEN_PATH = pathlib.Path(__file__).parent / "golden" / "lifted.json"


def _lifted_cases():
    """Eight deterministic safe/shatterable (name, query, pdb) pairs."""
    cases = []

    def add(name, query, seed, domain_size=2, facts=3, max_denominator=5):
        instance = random_instance_for_query(
            query, domain_size=domain_size, facts_per_relation=facts,
            seed=seed,
        )
        pdb = random_probabilities(
            instance, seed=seed, max_denominator=max_denominator
        )
        cases.append((name, query, pdb))

    add("star2", star_query(2), seed=201)
    add("star3", star_query(3), seed=202, domain_size=3, facts=4)
    add("hstar2", hierarchical_star_query(2), seed=203)
    add("rs-chain", parse_query("Q :- R(x, y), S(x)"), seed=204,
        domain_size=3, facts=4)
    add("repeated-var", parse_query("Q :- R(x, x), S(x)"), seed=205)
    add("shatter-fork", parse_query("Q :- R(s, u), R(s, v)"), seed=206,
        domain_size=3, facts=4)
    add("shatter-anchored", parse_query("Q :- R(s, u), R(s, v), S(s)"),
        seed=207)
    add("shatter-gen", random_shatterable_query(11), seed=208,
        domain_size=3, facts=4, max_denominator=8)
    return cases


def _evaluate(query, pdb) -> dict:
    classification = classify_query(query)
    plan = build_lifted_plan(query)
    answer = PQEEngine(seed=0).probability(query, pdb)
    return {
        "query": str(query),
        "facts": len(pdb),
        "classification": classification.status,
        "plan": plan.describe(),
        "plan_size": plan.size,
        "route": answer.route,
        "probability": str(answer.rational),
    }


def _current() -> dict:
    return {
        name: _evaluate(query, pdb)
        for name, query, pdb in _lifted_cases()
    }


def test_corpus_has_eight_workloads():
    assert len(_lifted_cases()) == 8


def test_golden_lifted_matches(update_golden):
    current = _current()
    if update_golden:
        GOLDEN_PATH.parent.mkdir(exist_ok=True)
        GOLDEN_PATH.write_text(
            json.dumps(current, indent=2, sort_keys=True) + "\n",
            encoding="utf-8",
        )
    assert GOLDEN_PATH.exists(), (
        "tests/golden/lifted.json is missing; generate it with "
        "pytest tests/test_golden_lifted.py --update-golden"
    )
    frozen = json.loads(GOLDEN_PATH.read_text(encoding="utf-8"))
    assert current == frozen, (
        "lifted answers or plans drifted from tests/golden/lifted.json; "
        "if intentional, refresh with --update-golden and review the diff"
    )


def test_every_golden_workload_rides_the_lifted_route():
    engine = PQEEngine(seed=0)
    for name, query, pdb in _lifted_cases():
        answer = engine.probability(query, pdb)
        assert answer.route == "lifted", name
        assert answer.exact, name


def test_golden_values_against_the_wmc_oracle():
    """The frozen rationals re-derived through the independent
    exact-WMC oracle — the golden file cannot drift into agreement
    with a broken lifted evaluator."""
    frozen = json.loads(GOLDEN_PATH.read_text(encoding="utf-8"))
    for name, query, pdb in _lifted_cases():
        expected = Fraction(frozen[name]["probability"])
        assert exact_probability(query, pdb, method="lineage") == (
            expected
        ), name
