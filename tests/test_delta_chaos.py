"""Chaos tier for the mutation path (``-m chaos``): crash the delta.

The acceptance matrix: a process killed — clean ``exit`` or raw
``SIGKILL`` — at *every* step of :meth:`VersionedDatabase.apply`
(validate, journal, invalidate, publish) recovers to **exactly the old
or exactly the new version**, never a hybrid, and the recovered
database answers bitwise-identically to a from-scratch oracle of that
version.  Bit-flipped WAL records quarantine their suffix the same
way.  The mid-flight scenario: a batch admitted against version *n*
while a delta publishes *n+1* returns answers bitwise-consistent with
exactly one of the two versions.

When ``CHAOS_ARTIFACT_DIR`` is set (the CI chaos/delta jobs), the
recovered delta journal is copied there for artifact upload.
"""

from __future__ import annotations

import multiprocessing
import os
import shutil
import threading
import warnings
from fractions import Fraction

import pytest

from repro.core.estimator import PQEEngine
from repro.core.exact import exact_probability
from repro.core.parallel import BatchItem, evaluate_batch
from repro.db import (
    Delta,
    DeltaOp,
    Fact,
    ProbabilisticDatabase,
    VersionedDatabase,
    apply_delta,
    load_delta_journal,
)
from repro.queries.parser import parse_query
from repro.testing.faults import FaultSpec, flip_bit, inject_faults

pytestmark = [
    pytest.mark.chaos,
    pytest.mark.delta,
    pytest.mark.skipif(
        "fork" not in multiprocessing.get_all_start_methods(),
        reason="delta chaos scenarios need fork-based child processes",
    ),
]

QUERY = parse_query("Q :- R1(x, y), R2(y, z)")

R1AB = Fact("R1", ("a", "b"))
R2BC = Fact("R2", ("b", "c"))


def base_pdb() -> ProbabilisticDatabase:
    return ProbabilisticDatabase({
        R1AB: "1/2",
        R2BC: "2/3",
        Fact("S1", ("x", "y")): "3/4",
    })


def the_delta() -> Delta:
    return Delta([
        DeltaOp.reweight(R1AB, "1/5"),
        DeltaOp.insert(Fact("R2", ("b", "d")), "1/7"),
    ])


def _export_artifact(path):
    artifact_dir = os.environ.get("CHAOS_ARTIFACT_DIR")
    if artifact_dir:
        os.makedirs(artifact_dir, exist_ok=True)
        shutil.copy(path, artifact_dir)


def _crash_apply(wal, step, crash):
    """Child-process body: die at delta step ``step`` mid-apply."""
    vdb = VersionedDatabase(base_pdb(), journal=wal)
    with inject_faults(
        FaultSpec("db.delta", after=step, crash=crash)
    ):
        vdb.apply(the_delta())
    os._exit(0)  # pragma: no cover - the fault always fires first


class TestCrashAtEveryStep:
    @pytest.mark.parametrize("crash", ["exit", "sigkill"])
    @pytest.mark.parametrize("step", [0, 1, 2, 3])
    def test_crash_recovers_to_old_or_new_never_hybrid(
        self, tmp_path, step, crash
    ):
        wal = tmp_path / f"deltas-{step}-{crash}.wal"
        ctx = multiprocessing.get_context("fork")
        child = ctx.Process(
            target=_crash_apply, args=(wal, step, crash)
        )
        child.start()
        child.join(timeout=60)
        assert child.exitcode is not None and child.exitcode != 0

        with warnings.catch_warnings():
            # A crash *at* the journal step may leave a torn tail;
            # quarantining it is part of the contract.
            warnings.simplefilter("ignore")
            recovered = VersionedDatabase(base_pdb(), journal=wal)
        _export_artifact(wal)

        old = base_pdb()
        new = apply_delta(base_pdb(), the_delta())
        # Steps 1-2 fire before the WAL commit: the delta vanished.
        # Steps 3-4 fire after it: the delta is durable.
        expected = old if step < 2 else new
        assert recovered.version == (0 if step < 2 else 1)
        assert recovered.cache_token == expected.cache_token
        assert dict(recovered.pdb.probabilities) == dict(
            expected.probabilities
        )

        # No oracle-divergent answer: the recovered head evaluates
        # bitwise like a from-scratch database of the same version.
        assert exact_probability(QUERY, recovered.pdb) == (
            exact_probability(QUERY, expected)
        )
        recovered.close()

    def test_recovered_head_accepts_further_deltas(self, tmp_path):
        """Roll-forward recovery is not a dead end: the chain extends."""
        wal = tmp_path / "deltas-continue.wal"
        ctx = multiprocessing.get_context("fork")
        child = ctx.Process(
            target=_crash_apply, args=(wal, 3, "sigkill")
        )
        child.start()
        child.join(timeout=60)

        recovered = VersionedDatabase(base_pdb(), journal=wal)
        assert recovered.version == 1
        recovered.apply(Delta([DeltaOp.delete(R2BC)]))
        recovered.close()
        _export_artifact(wal)

        again = VersionedDatabase(base_pdb(), journal=wal)
        assert again.version == 2
        assert again.recovered == 2
        assert R2BC not in again.pdb.probabilities
        again.close()


class TestCorruptedWal:
    @pytest.mark.parametrize("victim", [1, 2])
    def test_flipped_bit_quarantines_suffix_never_diverges(
        self, tmp_path, victim
    ):
        wal = tmp_path / "deltas-flip.wal"
        deltas = [
            Delta([DeltaOp.reweight(R1AB, "1/5")]),
            Delta([DeltaOp.reweight(R1AB, "1/6")]),
        ]
        with VersionedDatabase(base_pdb(), journal=wal) as vdb:
            for delta in deltas:
                vdb.apply(delta)

        # Flip a bit inside the ``victim``-th delta record (lines are
        # header, delta 1, applied 1, delta 2, applied 2).
        lines = wal.read_bytes().split(b"\n")
        line_index = 1 if victim == 1 else 3
        offset = (
            sum(len(line) + 1 for line in lines[:line_index]) + 40
        )
        flip_bit(wal, offset=offset)

        with pytest.warns(Warning, match="quarantin"):
            recovered = VersionedDatabase(base_pdb(), journal=wal)
        _export_artifact(wal)

        # The valid prefix replays; everything at or after the damage
        # is gone — and the surviving head matches its oracle exactly.
        surviving = victim - 1
        assert recovered.version == surviving
        expected = base_pdb()
        for delta in deltas[:surviving]:
            expected = apply_delta(expected, delta)
        assert recovered.cache_token == expected.cache_token
        assert exact_probability(QUERY, recovered.pdb) == (
            exact_probability(QUERY, expected)
        )
        recovered.close()

        with pytest.warns(Warning, match="quarantin"):
            loaded = load_delta_journal(wal)
        assert loaded.quarantined >= 1


class TestMidFlightDelta:
    def test_batch_is_bitwise_consistent_with_exactly_one_version(
        self,
    ):
        """A batch racing a concurrent delta pins one version: every
        answer matches the version-0 expectation or every answer
        matches version 1 — no mixture, no third value."""
        vdb = VersionedDatabase(base_pdb())
        engine = PQEEngine(epsilon=0.5, seed=2023)
        items = [
            BatchItem(QUERY, vdb, method="fpras-weighted")
            for _ in range(8)
        ]

        v0_pdb = vdb.pdb
        v1_pdb = apply_delta(base_pdb(), the_delta())
        expected = {
            0: [
                r.answer.value
                for r in evaluate_batch(
                    engine,
                    [
                        BatchItem(
                            QUERY, v0_pdb, method="fpras-weighted"
                        )
                        for _ in range(8)
                    ],
                    max_workers=4,
                    seed=7,
                ).results
            ],
            1: [
                r.answer.value
                for r in evaluate_batch(
                    engine,
                    [
                        BatchItem(
                            QUERY, v1_pdb, method="fpras-weighted"
                        )
                        for _ in range(8)
                    ],
                    max_workers=4,
                    seed=7,
                ).results
            ],
        }
        assert expected[0] != expected[1]

        results = {}

        def run_batch():
            results["batch"] = evaluate_batch(
                engine, items, max_workers=4, seed=7
            )

        racer = threading.Thread(target=run_batch)
        racer.start()
        vdb.apply(the_delta())  # publishes v1 while the batch runs
        racer.join(timeout=120)
        assert "batch" in results

        batch = results["batch"]
        assert batch.ok
        values = [r.answer.value for r in batch.results]
        assert values in (expected[0], expected[1])
        # The head the daemon publishes afterwards is version 1.
        assert vdb.version == 1
        assert vdb.cache_token == v1_pdb.cache_token
