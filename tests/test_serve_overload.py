"""Overload + chaos acceptance for the serve daemon (``-m serve``).

The ISSUE's acceptance scenario: a synchronized burst of at least 4×
the daemon's capacity (execution slots + queue), with worker crashes
injected, must produce **only** these three outcome shapes:

1. an answer correct within its *reported* ε (shed answers widen ε and
   say so — they are still answers, not errors);
2. a structured rejection (429 queue-full / 503 draining-or-quarantined
   / 504 deadline);
3. a structured crash record (500 with ``WorkerCrashError``) — never an
   unhandled exception, never a hung request.

Plus the durability half: a drained daemon's request journal replays
full-fidelity answers bitwise-identically after a restart, including
across a real SIGTERM against a live ``repro serve`` process.
"""

import json
import multiprocessing
import os
import signal
import subprocess
import sys
import time
import urllib.request
from fractions import Fraction
from pathlib import Path

import pytest

import repro
from repro.core.estimator import PQEEngine
from repro.db.fact import Fact
from repro.db.probabilistic import ProbabilisticDatabase
from repro.queries.parser import parse_query
from repro.serve import PQEServer, ServerConfig
from repro.testing.faults import FaultSpec, inject_faults, request_burst

pytestmark = pytest.mark.serve

needs_fork = pytest.mark.skipif(
    "fork" not in multiprocessing.get_all_start_methods(),
    reason="crash containment needs fork-based process isolation",
)

BASE = "Q :- R(x), S(x, y), T(y)"
POISON = "Q :- P(x, y), P(y, z)"

#: Daemon capacity = slots + queue; the burst is 4x this.
CONCURRENCY = 2
QUEUE = 2
BURST = 4 * (CONCURRENCY + QUEUE)


@pytest.fixture
def pdb() -> ProbabilisticDatabase:
    return ProbabilisticDatabase({
        Fact("R", ("a",)): "1/2",
        Fact("R", ("b",)): "1/3",
        Fact("S", ("a", "b")): "1/2",
        Fact("S", ("b", "c")): "2/3",
        Fact("T", ("b",)): "1/2",
        Fact("T", ("c",)): "1/3",
        Fact("P", ("a", "b")): "1/2",
        Fact("P", ("b", "c")): "2/3",
    })


def truth(pdb, query: str) -> float:
    """Ground truth from the exact lineage path (tiny instances)."""
    answer = PQEEngine().probability(
        parse_query(query), pdb, method="auto"
    )
    assert answer.exact
    return float(Fraction(answer.rational))


def assert_acceptable(body, status, truths):
    """One burst outcome must be answer / rejection / crash record."""
    if status == 200:
        assert body["ok"] is True
        expected = truths[body_query(body)]
        epsilon = body["epsilon"]
        # FPRAS answers are multiplicative (1 ± ε); Monte-Carlo under
        # shedding is additive ε (the engine runs it at ε/4) — accept
        # the union so every rung's own guarantee is what we check.
        tolerance = epsilon * expected + epsilon
        assert abs(body["value"] - expected) <= tolerance, body
        assert body["shed"] == (body["ladder_rung"] > 0)
        return "ok"
    if body.get("rejected"):
        assert status in (429, 503, 504)
        assert body["reason"] in (
            "queue_full", "draining", "deadline_expired", "quarantined"
        )
        return "rejected"
    # Structured failure: the only acceptable kind is a contained
    # worker crash (the injected chaos), never an unhandled error.
    assert status == 500
    assert body["error"]["exception"] == "WorkerCrashError"
    return "crashed"


def body_query(body) -> str:
    return body["_query"]  # stamped by the burst senders below


class TestOverloadBurst:
    def test_burst_over_capacity_all_outcomes_structured(self, pdb):
        server = PQEServer(pdb, ServerConfig(
            max_concurrency=CONCURRENCY, max_queue=QUEUE,
        ))
        truths = {BASE: truth(pdb, BASE)}

        def send(i):
            status, body = server.handle(
                {"query": BASE, "method": "fpras"}
            )
            body["_query"] = BASE
            return status, body

        # Tiny instances evaluate in microseconds — too fast for a
        # burst to ever stack up.  Hold each admitted request at the
        # serving-layer fault site so the spike actually contends.
        with inject_faults(FaultSpec("serve.request", stall=0.25)):
            outcomes = request_burst(send, BURST, concurrency=BURST)
        assert not any(isinstance(o, Exception) for o in outcomes)
        kinds = [
            assert_acceptable(body, status, truths)
            for status, body in outcomes
        ]
        # A 4x-capacity synchronized spike must overflow the bounded
        # queue: admission rejected the excess explicitly.
        assert kinds.count("rejected") >= 1
        assert kinds.count("ok") >= CONCURRENCY
        assert kinds.count("crashed") == 0
        counters = server.telemetry.metrics.counters
        assert counters["serve.requests"] == BURST
        assert (
            counters["serve.ok"]
            + counters.get("serve.rejected.queue_full", 0)
            + counters.get("serve.rejected.deadline_expired", 0)
            == BURST
        )

    def test_shedding_engages_under_sustained_pressure(self, pdb):
        # Low thresholds + a hot latency history: the spike is served
        # on higher rungs with wider ε rather than erroring.
        server = PQEServer(pdb, ServerConfig(
            max_concurrency=CONCURRENCY, max_queue=QUEUE,
            shed_target_p95=0.001, shed_thresholds=(0.1, 0.3, 0.6),
        ))
        for _ in range(8):
            server.shedder.observe(0.5)
        truths = {BASE: truth(pdb, BASE)}

        def send(i):
            status, body = server.handle(
                {"query": BASE, "method": "fpras"}
            )
            body["_query"] = BASE
            return status, body

        outcomes = request_burst(send, BURST, concurrency=BURST)
        kinds = [
            assert_acceptable(body, status, truths)
            for status, body in outcomes
        ]
        assert kinds.count("ok") >= CONCURRENCY
        shed = [
            body for status, body in outcomes
            if status == 200 and body["shed"]
        ]
        assert shed, "sustained pressure must shed at least one answer"
        for body in shed:
            assert body["epsilon"] > 0.25  # widened beyond the default
        assert server.telemetry.metrics.counters["serve.shed"] >= 1


@needs_fork
class TestOverloadWithCrashes:
    def test_burst_with_injected_crashes_stays_structured(self, pdb):
        server = PQEServer(pdb, ServerConfig(
            max_concurrency=CONCURRENCY, max_queue=QUEUE,
            isolation="process", epsilon=0.5,
            breaker_threshold=3,
        ))
        truths = {
            BASE: truth(pdb, BASE),
            POISON: truth(pdb, POISON),
        }
        # Unloaded poison request first: rung 0 -> karp-luby -> the
        # injected crash site fires deterministically at least once.
        with inject_faults(
            FaultSpec("lineage.karp_luby", crash="sigkill")
        ):
            status, body = server.handle(
                {"query": POISON, "method": "karp-luby"}
            )
            body["_query"] = POISON
            assert assert_acceptable(body, status, truths) == "crashed"

            def send(i):
                query, method = (
                    (POISON, "karp-luby")
                    if i % 4 == 0
                    else (BASE, "fpras")
                )
                status, body = server.handle(
                    {"query": query, "method": method}
                )
                body["_query"] = query
                return status, body

            outcomes = request_burst(send, BURST, concurrency=BURST)
        assert not any(isinstance(o, Exception) for o in outcomes)
        kinds = [
            assert_acceptable(body, status, truths)
            for status, body in outcomes
        ]
        assert kinds.count("ok") >= 1
        counters = server.telemetry.metrics.counters
        assert counters["serve.crashes"] >= 1
        # The slots all drained back: nothing leaked, nothing hung.
        assert server.admission.snapshot()["running"] == 0

    def test_repeat_crashes_trip_the_breaker(self, pdb):
        server = PQEServer(pdb, ServerConfig(
            isolation="process", epsilon=0.5, breaker_threshold=2,
        ))
        with inject_faults(
            FaultSpec("lineage.karp_luby", crash="sigkill")
        ):
            for _ in range(2):
                status, body = server.handle(
                    {"query": POISON, "method": "karp-luby"}
                )
                assert status == 500
                assert body["error"]["exception"] == "WorkerCrashError"
            # Third request: quarantined up front, no worker risked.
            status, body = server.handle(
                {"query": POISON, "method": "karp-luby"}
            )
        assert status == 503
        assert body["reason"] == "quarantined"
        counters = server.telemetry.metrics.counters
        assert counters["serve.crashes"] == 2
        assert counters["serve.rejected.quarantined"] == 1


class TestDrainJournalIdentity:
    #: Full-fidelity requests a restart must replay bitwise.
    REQUESTS = (
        {"query": BASE, "method": "fpras"},
        {"query": BASE, "method": "monte-carlo"},
        {"query": BASE, "task": "reliability"},
    )

    def test_drained_journal_replays_bitwise_identically(
        self, pdb, tmp_path
    ):
        journal = str(tmp_path / "requests.wal")
        first = PQEServer(pdb, ServerConfig(
            epsilon=0.5, journal=journal
        ))
        originals = []
        for payload in self.REQUESTS:
            status, body = first.handle(dict(payload))
            assert status == 200 and body["ok"]
            originals.append(body)
        # drain() is exactly what the SIGTERM handler runs.
        assert first.drain(reason="SIGTERM") is True

        second = PQEServer(pdb, ServerConfig(
            epsilon=0.5, journal=journal
        ))
        for payload, original in zip(self.REQUESTS, originals):
            status, replay = second.handle(dict(payload))
            assert status == 200
            assert replay["replayed"] is True
            assert replay["value"] == original["value"]
            assert replay["seed"] == original["seed"]
            assert replay["rational"] == original["rational"]
            assert replay["method"] == original["method"]
        counters = second.telemetry.metrics.counters
        assert counters["serve.replays"] == len(self.REQUESTS)


class TestDaemonSigterm:
    def test_live_daemon_sigterm_drains_and_restart_replays(
        self, pdb, tmp_path
    ):
        src_root = Path(repro.__file__).resolve().parents[1]
        data = tmp_path / "facts.csv"
        data.write_text(
            "R,1/2,a\nS,1/2,a,b\nT,1/2,b\n", encoding="utf-8"
        )
        journal = tmp_path / "requests.wal"
        env = {**os.environ, "PYTHONPATH": str(src_root)}

        def start_daemon(tag):
            ready = tmp_path / f"port-{tag}"
            process = subprocess.Popen(
                [sys.executable, "-m", "repro", "serve",
                 "--data", str(data), "--journal", str(journal),
                 "--ready-file", str(ready), "--epsilon", "0.5"],
                env=env, stdout=subprocess.PIPE,
                stderr=subprocess.PIPE, text=True,
            )
            deadline = time.monotonic() + 30
            while not ready.exists():
                assert process.poll() is None, process.stderr.read()
                assert time.monotonic() < deadline
                time.sleep(0.05)
            return process, int(ready.read_text().strip())

        def evaluate(port):
            request = urllib.request.Request(
                f"http://127.0.0.1:{port}/evaluate",
                data=json.dumps(
                    {"query": BASE, "method": "fpras"}
                ).encode(),
                headers={"Content-Type": "application/json"},
            )
            with urllib.request.urlopen(request, timeout=10) as reply:
                return json.loads(reply.read())

        process, port = start_daemon("first")
        try:
            original = evaluate(port)
            assert original["ok"] and not original["replayed"]
            process.send_signal(signal.SIGTERM)
            out, err = process.communicate(timeout=30)
            assert process.returncode == 0, err
            assert "drained:" in out
        finally:
            if process.poll() is None:
                process.kill()

        process, port = start_daemon("second")
        try:
            replay = evaluate(port)
            assert replay["replayed"] is True
            assert replay["value"] == original["value"]
            assert replay["seed"] == original["seed"]
            process.send_signal(signal.SIGTERM)
            process.communicate(timeout=30)
        finally:
            if process.poll() is None:
                process.kill()
