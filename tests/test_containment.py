"""Tests for CQ containment and core minimization (Chandra–Merlin)."""

from repro.queries.builders import path_query, star_query
from repro.queries.containment import (
    are_equivalent,
    canonical_database,
    core,
    is_contained_in,
    is_minimal,
)
from repro.queries.parser import parse_query


class TestCanonicalDatabase:
    def test_freezing(self):
        q = parse_query("R(x, y), S(y, z)")
        db = canonical_database(q)
        assert len(db) == 2
        assert db.active_domain == frozenset({"x", "y", "z"})

    def test_repeated_variables(self):
        q = parse_query("R(x, x)")
        db = canonical_database(q)
        assert len(db) == 1


class TestContainment:
    def test_reflexive(self):
        q = path_query(3)
        assert is_contained_in(q, q)

    def test_longer_path_contained_in_shorter_self_join(self):
        # R(x,y),R(y,z),R(z,w) ⊑ R(a,b) — any 3-chain yields an edge.
        long = parse_query("R(x, y), R(y, z), R(z, w)")
        short = parse_query("R(a, b)")
        assert is_contained_in(long, short)
        assert not is_contained_in(short, long)

    def test_path_prefix_containment(self):
        # Q3's first two atoms are exactly Q2 (same relation names), so
        # Q3 ⊑ Q2; the converse fails (Q2's canonical DB has no R3).
        assert is_contained_in(path_query(3), path_query(2))
        assert not is_contained_in(path_query(2), path_query(3))

    def test_adding_atoms_restricts(self):
        smaller = parse_query("R(x, y)")
        larger = parse_query("R(x, y), S(y, z)")
        assert is_contained_in(larger, smaller)
        assert not is_contained_in(smaller, larger)

    def test_self_loop_contained_in_edge(self):
        loop = parse_query("R(x, x)")
        edge = parse_query("R(u, v)")
        assert is_contained_in(loop, edge)
        assert not is_contained_in(edge, loop)

    def test_equivalence_by_renaming(self):
        a = parse_query("R(x, y), S(y, z)")
        b = parse_query("R(u, v), S(v, w)")
        assert are_equivalent(a, b)


class TestCore:
    def test_sjf_queries_are_cores(self):
        for query in (path_query(3), star_query(3)):
            assert is_minimal(query)
            assert core(query) == query

    def test_redundant_self_join_atom_removed(self):
        # R(x,y), R(u,v): the second atom folds onto the first.
        redundant = parse_query("R(x, y), R(u, v)")
        minimal = core(redundant)
        assert len(minimal) == 1
        assert are_equivalent(minimal, redundant)

    def test_chain_folding(self):
        # R(x,y), R(y,z), R(x,w): R(x,w) folds onto R(x,y).
        q = parse_query("R(x, y), R(y, z), R(x, w)")
        minimal = core(q)
        assert len(minimal) == 2
        assert are_equivalent(minimal, q)

    def test_nonredundant_self_join_kept(self):
        # A directed 2-path over one relation has core size 1?  No:
        # R(x,y),R(y,z) maps onto a self-loop R(v,v) — the core IS a
        # single loop-free atom only if a homomorphism exists; here
        # folding y→x forces R(x,x) which is not an atom of the query.
        q = parse_query("R(x, y), R(y, z)")
        minimal = core(q)
        assert are_equivalent(minimal, q)
        assert len(minimal) == 2

    def test_core_idempotent(self):
        q = parse_query("R(x, y), R(u, v), S(v, w)")
        assert core(core(q)) == core(q)
