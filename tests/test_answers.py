"""Tests for non-Boolean (answer-tuple) query evaluation."""

from fractions import Fraction

import pytest

from repro.core.exact import exact_probability
from repro.core.pqe_estimate import pqe_estimate
from repro.db.fact import Fact
from repro.db.probabilistic import ProbabilisticDatabase
from repro.errors import QueryError
from repro.queries.answers import (
    answer_probabilities,
    candidate_answers,
    pin_variables,
)
from repro.queries.atoms import Variable
from repro.queries.parser import parse_query
from repro.queries.properties import is_hierarchical


@pytest.fixture
def rs_pdb():
    return ProbabilisticDatabase(
        {
            Fact("R", ("a", "b")): "1/2",
            Fact("R", ("c", "b")): "1/3",
            Fact("S", ("b", "d")): "2/3",
            Fact("S", ("b", "e")): "1/4",
        }
    )


@pytest.fixture
def rs_query():
    return parse_query("Q :- R(x, y), S(y, z)")


class TestPinVariables:
    def test_empty_binding_is_identity(self, rs_query, rs_pdb):
        q, h = pin_variables(rs_query, rs_pdb, {})
        assert q is rs_query and h is rs_pdb

    def test_adds_eq_atom_and_fact(self, rs_query, rs_pdb):
        q, h = pin_variables(rs_query, rs_pdb, {Variable("x"): "a"})
        assert len(q) == 3
        assert "Eq_x" in q.relation_names
        assert h.probability(Fact("Eq_x", ("a",))) == 1

    def test_preserves_structure(self, rs_query, rs_pdb):
        from repro.decomposition import is_acyclic

        q, _h = pin_variables(
            rs_query, rs_pdb, {Variable("x"): "a", Variable("z"): "d"}
        )
        assert q.is_self_join_free
        assert is_acyclic(q)

    def test_unknown_variable_rejected(self, rs_query, rs_pdb):
        with pytest.raises(QueryError):
            pin_variables(rs_query, rs_pdb, {Variable("nope"): "a"})

    def test_pinned_probability_matches_manual(self, rs_query, rs_pdb):
        q, h = pin_variables(rs_query, rs_pdb, {Variable("x"): "a"})
        # Pr = Pr[R(a,b)] * Pr[S(b,*) nonempty] = 1/2 * (1 - 1/3*3/4).
        assert exact_probability(q, h) == Fraction(3, 8)

    def test_pinned_query_through_fpras(self, rs_query, rs_pdb):
        q, h = pin_variables(rs_query, rs_pdb, {Variable("x"): "a"})
        result = pqe_estimate(q, h, method="exact-automaton")
        assert result.estimate == pytest.approx(0.375)


class TestCandidateAnswers:
    def test_candidates(self, rs_query, rs_pdb):
        assert candidate_answers(rs_query, rs_pdb, [Variable("x")]) == [
            ("a",),
            ("c",),
        ]

    def test_multi_variable_head(self, rs_query, rs_pdb):
        answers = candidate_answers(
            rs_query, rs_pdb, [Variable("x"), Variable("z")]
        )
        assert ("a", "d") in answers and ("c", "e") in answers
        assert len(answers) == 4

    def test_unknown_head_rejected(self, rs_query, rs_pdb):
        with pytest.raises(QueryError):
            candidate_answers(rs_query, rs_pdb, [Variable("w")])


class TestAnswerProbabilities:
    def test_values(self, rs_query, rs_pdb):
        answers = answer_probabilities(rs_query, rs_pdb, [Variable("x")])
        assert answers[("a",)] == pytest.approx(0.375)
        assert answers[("c",)] == pytest.approx((1 / 3) * 0.75)

    def test_custom_evaluator(self, rs_query, rs_pdb):
        calls = []

        def evaluator(q, h):
            calls.append(q)
            return float(exact_probability(q, h))

        answers = answer_probabilities(
            rs_query, rs_pdb, [Variable("x")], evaluate=evaluator
        )
        assert len(calls) == 2
        assert answers[("a",)] == pytest.approx(0.375)

    def test_fpras_evaluator(self, rs_query, rs_pdb):
        answers = answer_probabilities(
            rs_query,
            rs_pdb,
            [Variable("x")],
            evaluate=lambda q, h: pqe_estimate(
                q, h, method="exact-automaton"
            ).estimate,
        )
        assert answers[("a",)] == pytest.approx(0.375)

    def test_answers_sum_bounded_by_union(self, rs_query, rs_pdb):
        # Union bound sanity: Pr[∃ match] <= Σ per-answer probabilities.
        answers = answer_probabilities(rs_query, rs_pdb, [Variable("x")])
        total = float(exact_probability(rs_query, rs_pdb))
        assert total <= sum(answers.values()) + 1e-9

    def test_pinning_keeps_safety_when_hierarchical(self):
        # Pinning the root variable of a star keeps it hierarchical.
        query = parse_query("R1(c, y1), R2(c, y2)")
        pdb = ProbabilisticDatabase(
            {
                Fact("R1", ("a", "u")): "1/2",
                Fact("R2", ("a", "v")): "1/2",
            }
        )
        pinned, _h = pin_variables(query, pdb, {Variable("c"): "a"})
        assert is_hierarchical(pinned)
