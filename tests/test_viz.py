"""Tests for the DOT rendering utilities."""

from repro.automata.nfa import NFA
from repro.automata.nfta import LAMBDA, NFTA
from repro.decomposition import decompose
from repro.queries.builders import path_query, triangle_query
from repro.viz import decomposition_to_dot, nfa_to_dot, nfta_to_dot


class TestDecompositionDot:
    def test_structure(self):
        dot = decomposition_to_dot(decompose(path_query(3)))
        assert dot.startswith("digraph decomposition {")
        assert dot.rstrip().endswith("}")
        assert dot.count("->") == 2  # 3 nodes, 2 tree edges
        assert "χ" in dot and "ξ" in dot

    def test_triangle(self):
        decomposition = decompose(triangle_query())
        dot = decomposition_to_dot(decomposition, name="tri")
        assert "digraph tri {" in dot
        assert dot.count("->") == len(decomposition.nodes) - 1

    def test_deterministic(self):
        d = decompose(path_query(2))
        assert decomposition_to_dot(d) == decomposition_to_dot(d)


class TestNfaDot:
    def test_structure(self):
        nfa = NFA(
            [(0, "a", 1), (1, "b", 1)], initial=[0], accepting=[1]
        )
        dot = nfa_to_dot(nfa)
        assert "doublecircle" in dot       # accepting state
        assert "shape=point" in dot        # start marker
        assert dot.count('label="a"') == 1
        assert dot.count('label="b"') == 1

    def test_escaping(self):
        nfa = NFA([(0, 'sym"bol', 1)], initial=[0], accepting=[1])
        dot = nfa_to_dot(nfa)
        assert '\\"' in dot


class TestNftaDot:
    def test_structure(self):
        nfta = NFTA(
            [("q", "a", ()), ("q", "a", ("q", "q"))], initial="q"
        )
        dot = nfta_to_dot(nfta)
        assert "peripheries=2" in dot      # initial state marked
        assert dot.count("shape=box") == 2  # one per transition
        assert 'label="1"' in dot and 'label="2"' in dot

    def test_lambda_label(self):
        nfta = NFTA(
            [("s", LAMBDA, ("t",)), ("t", "a", ())], initial="s"
        )
        dot = nfta_to_dot(nfta)
        assert 'label="λ"' in dot
