"""Lint: no unseeded randomness anywhere in ``src/repro/``.

Every estimate this repository produces carries a bitwise-
reproducibility promise: same inputs + same seed = same bits, at any
worker count, on any machine.  A single call to the *module-level*
``random.random()`` (the shared, unseeded global RNG) or to
``random.Random()`` with no argument (seeded from the OS) anywhere in a
hot path silently voids that promise — and such a call is invisible to
the differential and determinism suites unless it happens to land in a
compared code path.

So this test greps the entire source tree: randomness must always flow
from an explicit ``random.Random(seed)`` (or an injected RNG object).
Test code is free to use whatever it likes; only ``src/repro/`` is
constrained.

If a genuinely nondeterministic default is ever wanted, spell it
``random.Random(None)`` — explicit, greppable, and excluded from this
lint by construction.
"""

from __future__ import annotations

import pathlib
import re

SRC = pathlib.Path(__file__).parent.parent / "src" / "repro"

#: Module-level RNG calls: random.random(), random.randint(…),
#: random.choice(…), random.sample(…), random.shuffle(…) — any direct
#: use of the global RNG.  ``random.Random``/``random.SystemRandom``
#: constructors are handled by _BARE_CONSTRUCTOR below.
_GLOBAL_RNG = re.compile(
    r"\brandom\.(random|randint|randrange|choice|choices|sample|"
    r"shuffle|uniform|betavariate|gauss|expovariate)\s*\("
)

#: ``random.Random()`` with an empty argument list: OS-seeded.
_BARE_CONSTRUCTOR = re.compile(r"\brandom\.Random\(\s*\)")


def _violations() -> list[str]:
    found = []
    for path in sorted(SRC.rglob("*.py")):
        for number, line in enumerate(
            path.read_text(encoding="utf-8").splitlines(), start=1
        ):
            stripped = line.split("#", 1)[0]
            if _GLOBAL_RNG.search(stripped) or _BARE_CONSTRUCTOR.search(
                stripped
            ):
                found.append(
                    f"{path.relative_to(SRC.parent.parent)}:{number}: "
                    f"{line.strip()}"
                )
    return found


def test_source_tree_exists():
    assert SRC.is_dir(), f"expected source tree at {SRC}"
    assert any(SRC.rglob("*.py"))


def test_no_bare_random_in_src():
    violations = _violations()
    assert not violations, (
        "unseeded RNG use in src/repro/ breaks the bitwise-"
        "reproducibility contract; thread an explicit "
        "random.Random(seed) instead:\n" + "\n".join(violations)
    )
