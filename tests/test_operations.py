"""Tests for automata language operations and bounded comparison."""

import random

import pytest
from hypothesis import given, settings
from hypothesis import strategies as st

from repro.automata.nfa import NFA
from repro.automata.nfta import LAMBDA, NFTA
from repro.automata.operations import (
    nfa_equivalent_upto,
    nfa_included_upto,
    nfa_intersection,
    nfa_union,
    nfta_equivalent_upto,
    nfta_included_upto,
    nfta_intersection,
    nfta_union,
)
from repro.automata.nfta_counting import count_nfta_exact
from repro.errors import AutomatonError


def _ends_in(symbol: str) -> NFA:
    return NFA(
        [(0, "a", 0), (0, "b", 0), (0, symbol, 1)],
        initial=[0],
        accepting=[1],
    )


def _random_nfa(seed: int, states: int = 4) -> NFA:
    rng = random.Random(seed)
    transitions = []
    for s in range(states):
        for symbol in "ab":
            for t in range(states):
                if rng.random() < 0.35:
                    transitions.append((s, symbol, t))
    initial = [s for s in range(states) if rng.random() < 0.5] or [0]
    accepting = [s for s in range(states) if rng.random() < 0.4]
    return NFA(transitions, initial=initial, accepting=accepting)


class TestNFAOperations:
    def test_union_counts(self):
        ends_a, ends_b = _ends_in("a"), _ends_in("b")
        union = nfa_union(ends_a, ends_b)
        for n in range(1, 6):
            # ends in a OR ends in b = all strings of length n.
            assert union.count_exact(n) == 2**n

    def test_intersection_counts(self):
        ends_a, ends_b = _ends_in("a"), _ends_in("b")
        intersection = nfa_intersection(ends_a, ends_b)
        for n in range(1, 6):
            assert intersection.count_exact(n) == 0

    def test_intersection_nonempty(self):
        ends_a = _ends_in("a")
        everything = NFA(
            [(0, "a", 0), (0, "b", 0)], initial=[0], accepting=[0]
        )
        intersection = nfa_intersection(ends_a, everything)
        for n in range(1, 5):
            assert intersection.count_exact(n) == ends_a.count_exact(n)

    def test_inclusion_positive(self):
        ends_a = _ends_in("a")
        union = nfa_union(ends_a, _ends_in("b"))
        assert nfa_included_upto(ends_a, union, 6)

    def test_inclusion_negative(self):
        ends_a, ends_b = _ends_in("a"), _ends_in("b")
        assert not nfa_included_upto(ends_a, ends_b, 3)

    def test_equivalence_reflexive(self):
        nfa = _random_nfa(3)
        assert nfa_equivalent_upto(nfa, nfa, 6)

    @given(st.integers(min_value=0, max_value=5_000))
    @settings(max_examples=20, deadline=None)
    def test_trim_equivalent(self, seed):
        nfa = _random_nfa(seed)
        assert nfa_equivalent_upto(nfa, nfa.trimmed(), 6)

    @given(st.integers(min_value=0, max_value=5_000))
    @settings(max_examples=20, deadline=None)
    def test_inclusion_consistent_with_enumeration(self, seed):
        a = _random_nfa(seed)
        b = _random_nfa(seed + 1)
        included = nfa_included_upto(a, b, 4)
        brute = all(
            word in set(b.enumerate_language(n))
            for n in range(5)
            for word in a.enumerate_language(n)
        )
        assert included == brute


def _leafy(symbol: str) -> NFTA:
    """Accepts exactly the single leaf tree `symbol`."""
    return NFTA([("q", symbol, ())], initial="q")


def _all_unary_chains() -> NFTA:
    return NFTA(
        [("q", "a", ()), ("q", "a", ("q",))], initial="q"
    )


class TestNFTAOperations:
    def test_union_counts(self):
        union = nfta_union(_leafy("a"), _leafy("b"))
        assert count_nfta_exact(union, 1) == 2

    def test_union_with_chains(self):
        union = nfta_union(_leafy("b"), _all_unary_chains())
        assert count_nfta_exact(union, 1) == 2  # leaf a and leaf b
        assert count_nfta_exact(union, 3) == 1  # only the a-chain

    def test_intersection(self):
        chains = _all_unary_chains()
        restricted = NFTA(
            [("p", "a", ()), ("p", "a", ("r",)), ("r", "a", ())],
            initial="p",
        )  # chains of length 1 or 2 only
        intersection = nfta_intersection(chains, restricted)
        assert count_nfta_exact(intersection, 1) == 1
        assert count_nfta_exact(intersection, 2) == 1
        assert count_nfta_exact(intersection, 3) == 0

    def test_inclusion(self):
        chains = _all_unary_chains()
        assert nfta_included_upto(_leafy("a"), chains, 4)
        assert not nfta_included_upto(chains, _leafy("a"), 4)

    def test_equivalence_reflexive(self):
        chains = _all_unary_chains()
        assert nfta_equivalent_upto(chains, chains, 5)

    def test_lambda_elimination_preserves_language(self):
        with_lambda = NFTA(
            [
                ("root", "r", ("m",)),
                ("m", LAMBDA, ("p", "q")),
                ("m", "c", ()),
                ("p", "a", ()),
                ("q", "b", ()),
            ],
            initial="root",
        )
        eliminated = with_lambda.eliminate_lambda()
        reference = NFTA(
            [
                ("root", "r", ("m",)),
                ("root", "r", ("p", "q")),
                ("m", "c", ()),
                ("p", "a", ()),
                ("q", "b", ()),
            ],
            initial="root",
        )
        # The spliced language: r(c) and r(a, b).
        assert nfta_equivalent_upto(eliminated, reference, 4)

    def test_trimmed_equivalent(self):
        nfta = NFTA(
            [
                ("q", "a", ()),
                ("q", "b", ("dead",)),
                ("island", "a", ()),
            ],
            initial="q",
        )
        assert nfta_equivalent_upto(nfta, nfta.trimmed(), 4)

    def test_lambda_operand_rejected(self):
        bad = NFTA([("s", LAMBDA, ("t",)), ("t", "a", ())], initial="s")
        good = _leafy("a")
        with pytest.raises(AutomatonError):
            nfta_union(bad, good)
        with pytest.raises(AutomatonError):
            nfta_intersection(bad, good)
        with pytest.raises(AutomatonError):
            nfta_included_upto(bad, good, 3)
