"""Tests for the CountNFA FPRAS (hybrid and pure-sampling regimes)."""

import random

import pytest
from hypothesis import given, settings
from hypothesis import strategies as st

from repro.automata.nfa import NFA
from repro.automata.nfa_counting import (
    count_nfa,
    default_sample_count,
    sample_accepted_strings,
)
from repro.errors import EstimationError


def _random_nfa(seed: int, states: int = 6) -> NFA:
    rng = random.Random(seed)
    transitions = []
    for s in range(states):
        for symbol in "ab":
            for t in range(states):
                if rng.random() < 0.3:
                    transitions.append((s, symbol, t))
    initial = [s for s in range(states) if rng.random() < 0.5] or [0]
    accepting = [s for s in range(states) if rng.random() < 0.4] or [
        states - 1
    ]
    return NFA(transitions, initial=initial, accepting=accepting)


class TestHybridRegime:
    @given(st.integers(min_value=0, max_value=10_000))
    @settings(max_examples=20, deadline=None)
    def test_hybrid_is_exact_on_small_automata(self, seed):
        nfa = _random_nfa(seed)
        n = 7
        exact = nfa.count_exact(n)
        result = count_nfa(nfa, n, epsilon=0.5, seed=seed)
        if result.exact:
            assert result.estimate == exact

    def test_empty_language(self):
        nfa = NFA([(0, "a", 1)], initial=[0], accepting=[])
        result = count_nfa(nfa, 3, seed=0)
        assert result.estimate == 0
        assert result.exact

    def test_length_zero(self):
        nfa = NFA([(0, "a", 0)], initial=[0], accepting=[0])
        result = count_nfa(nfa, 0, seed=0)
        assert result.estimate == 1


class TestSamplingRegime:
    @pytest.mark.parametrize("seed", range(8))
    def test_pure_sampling_accuracy(self, seed):
        nfa = _random_nfa(seed)
        n = 8
        exact = nfa.count_exact(n)
        result = count_nfa(
            nfa, n, epsilon=0.2, seed=seed, exact_set_cap=0,
            repetitions=3,
        )
        if exact == 0:
            assert result.estimate == 0
        else:
            assert abs(result.estimate - exact) / exact < 0.35

    def test_samples_override(self):
        nfa = _random_nfa(1)
        result = count_nfa(
            nfa, 6, seed=0, exact_set_cap=0, samples=32
        )
        assert result.estimate >= 0

    def test_invalid_epsilon(self):
        nfa = _random_nfa(0)
        with pytest.raises(EstimationError):
            count_nfa(nfa, 3, epsilon=0.0)
        with pytest.raises(EstimationError):
            count_nfa(nfa, 3, epsilon=1.5)

    def test_invalid_repetitions(self):
        with pytest.raises(EstimationError):
            count_nfa(_random_nfa(0), 3, repetitions=0)

    def test_default_sample_count_scales(self):
        assert default_sample_count(10, 0.1) > default_sample_count(10, 0.5)
        assert default_sample_count(100, 0.2) > default_sample_count(4, 0.2)


class TestSampling:
    def test_samples_are_accepted_strings(self):
        nfa = _random_nfa(3)
        n = 6
        if nfa.count_exact(n) == 0:
            pytest.skip("empty language for this seed")
        words = sample_accepted_strings(nfa, n, k=20, seed=1)
        assert len(words) == 20
        for word in words:
            assert len(word) == n
            assert nfa.accepts(word)

    def test_sampling_empty_language_raises(self):
        nfa = NFA([(0, "a", 1)], initial=[0], accepting=[])
        with pytest.raises(EstimationError):
            sample_accepted_strings(nfa, 3, k=5, seed=0)

    def test_sampling_coverage(self):
        # Over many draws from a tiny language every member should show.
        nfa = NFA(
            [(0, "a", 1), (0, "b", 1), (1, "a", 2), (1, "b", 2)],
            initial=[0],
            accepting=[2],
        )
        words = sample_accepted_strings(
            nfa, 2, k=200, seed=7, exact_set_cap=0
        )
        assert len(set(words)) == 4


class TestDeterminism:
    def test_same_seed_same_estimate(self):
        nfa = _random_nfa(5)
        a = count_nfa(nfa, 7, seed=42, exact_set_cap=0)
        b = count_nfa(nfa, 7, seed=42, exact_set_cap=0)
        assert a.estimate == b.estimate

    def test_median_of_repetitions(self):
        nfa = _random_nfa(5)
        result = count_nfa(
            nfa, 7, seed=42, exact_set_cap=0, repetitions=5
        )
        assert result.samples_used > 0


class TestWeightedStringCounting:
    def test_exact_weighted_single_letter(self):
        nfa = NFA([(0, "a", 1), (0, "b", 1)], initial=[0], accepting=[1])
        weights = {"a": 3, "b": 5}
        assert nfa.count_exact(1, weight_of=weights.get) == 8

    def test_exact_weighted_chain(self):
        nfa = NFA([(0, "a", 1), (1, "b", 2)], initial=[0], accepting=[2])
        weights = {"a": 2, "b": 7}
        assert nfa.count_exact(2, weight_of=weights.get) == 14

    def test_zero_weight_prunes(self):
        nfa = NFA([(0, "a", 1), (0, "b", 1)], initial=[0], accepting=[1])
        weights = {"a": 0, "b": 5}
        assert nfa.count_exact(1, weight_of=weights.get) == 5

    def test_weighted_ambiguity_not_overcounted(self):
        # Two runs accept the same string "a": weight counted once.
        nfa = NFA(
            [(0, "a", 1), (0, "a", 2)], initial=[0], accepting=[1, 2]
        )
        assert nfa.count_exact(1, weight_of=lambda _s: 3) == 3

    def test_fpras_weighted_matches_exact(self):
        nfa = _random_nfa(4)
        weights = {"a": 2, "b": 3}
        n = 7
        exact = nfa.count_exact(n, weight_of=weights.get)
        if exact == 0:
            return
        result = count_nfa(
            nfa, n, epsilon=0.2, seed=5, exact_set_cap=0,
            weight_of=weights.get, repetitions=3,
        )
        assert abs(result.estimate - exact) / exact < 0.4

    def test_fpras_weighted_hybrid(self):
        nfa = _random_nfa(2)
        weights = {"a": 2, "b": 1}
        n = 6
        exact = nfa.count_exact(n, weight_of=weights.get)
        result = count_nfa(nfa, n, epsilon=0.3, seed=0, weight_of=weights.get)
        if result.exact and exact:
            assert abs(result.estimate - exact) / exact < 1e-9

    def test_weighted_sampling_proportional(self):
        nfa = NFA(
            [(0, "light", 1), (0, "heavy", 1)],
            initial=[0],
            accepting=[1],
        )
        weights = {"light": 1, "heavy": 9}
        words = sample_accepted_strings(
            nfa, 1, k=400, seed=6, exact_set_cap=16,
            weight_of=weights.get,
        )
        heavy = sum(1 for w in words if w == ("heavy",))
        assert 0.8 < heavy / 400 < 0.97


class TestAdversarialAmbiguity:
    """Highly-ambiguous automata: the union correction's hardest case."""

    def test_m_identical_branches(self):
        # m disjoint state copies all accepting {a,b}^n: naive summing
        # over components would report m·2^n; the KL correction must
        # recover ~2^n.
        m, n = 6, 6
        transitions = []
        for copy in range(m):
            for symbol in "ab":
                transitions.append(((copy, 0), symbol, (copy, 1)))
                transitions.append(((copy, 1), symbol, (copy, 1)))
        nfa = NFA(
            transitions,
            initial=[(copy, 0) for copy in range(m)],
            accepting=[(copy, 1) for copy in range(m)],
        )
        exact = nfa.count_exact(n)
        assert exact == 2**n
        result = count_nfa(
            nfa, n, epsilon=0.15, seed=3, exact_set_cap=0,
            repetitions=3,
        )
        assert abs(result.estimate - exact) / exact < 0.3

    def test_nested_ambiguity(self):
        # Every state at every level has two successors accepting the
        # same suffix language.
        n = 6
        transitions = []
        for level in range(n):
            for branch in (0, 1):
                for nxt in (0, 1):
                    transitions.append(
                        ((level, branch), "a", (level + 1, nxt))
                    )
        nfa = NFA(
            transitions,
            initial=[(0, 0)],
            accepting=[(n, 0), (n, 1)],
        )
        exact = nfa.count_exact(n)
        assert exact == 1  # only a^n, massively ambiguous
        result = count_nfa(
            nfa, n, epsilon=0.2, seed=1, exact_set_cap=0
        )
        assert abs(result.estimate - 1) < 0.3
