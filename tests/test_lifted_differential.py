"""Three-oracle differential harness for the lifted fast path.

Every query the router certifies ``safe`` is answered by three
independent implementations and the answers are differenced:

1. **lifted** — the typed lifted plan of :mod:`repro.queries.lifted`
   (independent join/project with separators, shattering, independent
   union, inclusion–exclusion);
2. **exact WMC** — lineage construction plus exact weighted model
   counting (and brute-force world enumeration on tiny instances):
   lifted must agree **bitwise**, as :class:`~fractions.Fraction`;
3. **FPRAS** — the paper's randomized route must land inside a loose ε
   envelope around the exact value (deterministic for a fixed seed).

Queries the router proves ``unsafe`` must *deterministically* fall
through: classification says so, the auto ladder carries no lifted
rung, and an explicit ``method='lifted'`` degrades with the
classification recorded in the answer's provenance.

The harness sweeps the shared frozen corpus (the same 20 workloads
``tests/golden/corpus.json`` pins) plus the random generator families
of :mod:`repro.workloads.queries`, and re-runs the safe sweep through
``evaluate_batch`` at ``max_workers`` 1 and 4 to pin worker-count
invariance of the lifted route.
"""

from __future__ import annotations

from fractions import Fraction

import pytest

from repro.core.estimator import PQEEngine
from repro.core.exact import exact_probability
from repro.core.parallel import BatchItem
from repro.core.resilience import degradation_ladder, evaluate_with_policy
from repro.db.fact import Fact
from repro.db.probabilistic import ProbabilisticDatabase
from repro.errors import UnknownSafetyError, UnsafeQueryError
from repro.queries.cq import ConjunctiveQuery
from repro.queries.lifted import (
    build_lifted_plan,
    classify_query,
    lifted_probability,
)
from repro.queries.parser import parse_query
from repro.queries.ucq import UnionQuery, ucq_probability
from repro.workloads import (
    random_hierarchical_query,
    random_instance_for_query,
    random_probabilities,
    random_safe_ucq,
    random_shatterable_query,
    random_unsafe_query,
)

from test_golden_corpus import _corpus_cases

pytestmark = pytest.mark.lifted

#: Enumeration oracle cap: 2^12 worlds is instant, larger is not.
ENUMERATION_CAP = 12


def _generated_cases(seeds=range(20)):
    """(name, query, pdb) triples from the random generator families,
    over random instances sized for the exact oracles."""
    cases = []
    for seed in seeds:
        for label, generator in (
            ("hier", random_hierarchical_query),
            ("shatter", random_shatterable_query),
        ):
            query = generator(seed)
            instance = random_instance_for_query(
                query, domain_size=2, facts_per_relation=2, seed=seed
            )
            pdb = random_probabilities(
                instance, seed=seed, max_denominator=5,
                include_extremes=True,
            )
            cases.append((f"{label}-{seed}", query, pdb))
    return cases


def _safe_corpus_cases():
    return [
        (name, query, pdb)
        for name, query, pdb, _instance in _corpus_cases()
        if isinstance(query, ConjunctiveQuery)
        and classify_query(query).safe
    ]


def _unsafe_corpus_cases():
    return [
        (name, query, pdb)
        for name, query, pdb, _instance in _corpus_cases()
        if isinstance(query, ConjunctiveQuery)
        and classify_query(query).status == "unsafe"
    ]


# ---------------------------------------------------------------------
# Oracle 1 vs oracle 2: bitwise Fraction equality on every safe query
# ---------------------------------------------------------------------

def test_corpus_covers_both_regimes():
    # The shared corpus must actually exercise the harness: several
    # safe workloads and at least one provably-unsafe one.
    assert len(_safe_corpus_cases()) >= 5
    assert len(_unsafe_corpus_cases()) >= 1


def test_lifted_matches_exact_wmc_on_safe_corpus():
    for name, query, pdb in _safe_corpus_cases():
        lifted = lifted_probability(query, pdb)
        wmc = exact_probability(query, pdb, method="lineage")
        assert isinstance(lifted, Fraction)
        assert lifted == wmc, name


def test_lifted_matches_both_exact_oracles_on_generated_queries():
    checked_enumeration = 0
    for name, query, pdb in _generated_cases():
        classification = classify_query(query)
        assert classification.safe, (name, classification.reason)
        lifted = lifted_probability(query, pdb)
        wmc = exact_probability(query, pdb, method="lineage")
        assert lifted == wmc, name
        if len(pdb) <= ENUMERATION_CAP:
            brute = exact_probability(query, pdb, method="enumerate")
            assert lifted == brute, name
            checked_enumeration += 1
    assert checked_enumeration >= 10  # the brute-force leg really ran


def test_lifted_matches_lineage_on_safe_ucqs():
    for seed in range(20):
        ucq = random_safe_ucq(seed)
        assert classify_query(ucq).safe, str(ucq)
        instance_facts = {}
        for index, disjunct in enumerate(ucq.disjuncts):
            instance = random_instance_for_query(
                disjunct, domain_size=2, facts_per_relation=2,
                seed=seed + index,
            )
            pdb_part = random_probabilities(
                instance, seed=seed + index, max_denominator=4
            )
            instance_facts.update(pdb_part.probabilities)
        pdb = ProbabilisticDatabase(instance_facts)
        lifted = lifted_probability(ucq, pdb)
        wmc = ucq_probability(ucq, pdb, method="lineage")
        assert lifted == wmc, str(ucq)
        # The default UCQ entry point routes through the same plan.
        assert ucq_probability(ucq, pdb) == wmc


# ---------------------------------------------------------------------
# Oracle 3: the FPRAS lands inside its ε envelope around the truth
# ---------------------------------------------------------------------

def test_fpras_lands_within_epsilon_of_lifted_on_safe_corpus():
    engine = PQEEngine(epsilon=0.2, seed=7, repetitions=3)
    for name, query, pdb in _safe_corpus_cases():
        truth = lifted_probability(query, pdb)
        method = "fpras" if query.is_self_join_free else "karp-luby"
        estimate = engine.probability(query, pdb, method=method)
        if truth == 0:
            assert estimate.value == pytest.approx(0.0, abs=1e-9), name
        else:
            relative = abs(estimate.value - float(truth)) / float(truth)
            # Loose envelope: ε=0.2 at fixed seed with median-of-3.
            assert relative < 0.75, (name, estimate.value, float(truth))


# ---------------------------------------------------------------------
# Routing: safe queries ride the lifted rung, at any worker count
# ---------------------------------------------------------------------

def test_auto_routes_safe_corpus_queries_to_lifted():
    engine = PQEEngine(seed=0)
    for name, query, pdb in _safe_corpus_cases():
        answer = engine.probability(query, pdb)
        assert answer.route == "lifted", name
        assert answer.exact
        assert answer.rational == lifted_probability(query, pdb), name
        plan = engine.explain(query, pdb)
        assert plan.route == "lifted", name
        assert plan.safety == "safe", name
        assert plan.fallbacks[0] == "lifted", name


@pytest.mark.parametrize("max_workers", [1, 4])
def test_batch_lifted_route_is_worker_count_invariant(max_workers):
    items = [
        BatchItem(query, pdb)
        for _name, query, pdb in _safe_corpus_cases()
    ] + [
        BatchItem(query, pdb)
        for _name, query, pdb in _generated_cases(seeds=range(5))
    ]
    engine = PQEEngine(seed=42)
    batch = engine.evaluate_batch(items, max_workers=max_workers)
    assert batch.ok
    for item, result in zip(items, batch.results):
        assert result.answer.route == "lifted"
        expected = lifted_probability(item.query, item.database)
        assert result.answer.rational == expected


def test_batch_values_bitwise_identical_across_worker_counts():
    items = [
        BatchItem(query, pdb)
        for _name, query, pdb in _generated_cases(seeds=range(8))
    ]
    engine = PQEEngine(seed=42)
    one = engine.evaluate_batch(items, max_workers=1)
    four = engine.evaluate_batch(items, max_workers=4)
    assert one.values == four.values


# ---------------------------------------------------------------------
# Unsafe queries deterministically fall through
# ---------------------------------------------------------------------

def test_unsafe_queries_are_proved_hard_and_skipped_by_the_ladder():
    for seed in range(20):
        query = random_unsafe_query(seed)
        classification = classify_query(query)
        assert classification.status == "unsafe", str(query)
        assert "dichotomy" in classification.reason
        with pytest.raises(UnsafeQueryError):
            build_lifted_plan(query)
        # The auto ladder never carries a lifted rung for them.
        assert degradation_ladder(query)[0] == "auto", str(query)


def test_unsafe_corpus_queries_record_classification_in_fallbacks():
    engine = PQEEngine(seed=3, epsilon=0.4)
    for name, query, pdb in _unsafe_corpus_cases():
        plan = engine.explain(query, pdb)
        assert plan.safety == "unsafe", name
        assert "lifted" not in plan.fallbacks, name
        # Forcing the lifted rung degrades deterministically, with the
        # classification recorded in the provenance log.
        answer = evaluate_with_policy(
            engine, query, pdb, method="lifted", seed=3
        )
        assert answer.degraded, name
        assert answer.degradations[0].startswith(
            "lifted: UnsafeQueryError"
        ), name
        assert answer.method != "lifted", name


def test_unknown_self_join_falls_through_with_unknown_classification():
    query = parse_query("R(x, y), R(y, x)")
    classification = classify_query(query)
    assert classification.status == "unknown"
    pdb = ProbabilisticDatabase({
        Fact("R", ("a", "b")): "1/2",
        Fact("R", ("b", "a")): "1/3",
    })
    with pytest.raises(UnknownSafetyError):
        lifted_probability(query, pdb)
    engine = PQEEngine(seed=1)
    answer = evaluate_with_policy(engine, query, pdb, method="lifted")
    assert answer.degradations[0].startswith("lifted: UnknownSafetyError")
    # And the fallback answer agrees with brute force (tiny instance).
    assert answer.value == pytest.approx(
        float(exact_probability(query, pdb, method="enumerate"))
    )


def test_safe_answers_carry_zero_epsilon_semantics():
    # The lifted rung is exact: no degradations, exact flag, rational
    # payload — regardless of the engine's configured ε.
    engine = PQEEngine(epsilon=0.49, seed=9)
    for name, query, pdb in _safe_corpus_cases():
        answer = engine.evaluate_resilient(query, pdb)
        assert not answer.degraded, name
        assert answer.exact, name
        assert answer.rational is not None, name
