"""Metrics-invariant tests for the observability layer (:mod:`repro.obs`).

The telemetry contract locked down here:

- **conservation** — ``cache.hits + cache.misses == cache.lookups`` in
  every registry, per item and merged;
- **nesting** — every child span's interval lies inside its parent's
  (exact, not epsilon-tolerant: the tracer orders its clock reads);
- **merge = sum** — the batch registry equals the fold of the per-item
  registries, at workers 1, 4 and 8;
- **determinism** — deterministic counters are bitwise-identical for a
  fixed seed across runs and worker counts (only
  :data:`repro.obs.SCHEDULING_SENSITIVE` may differ);
- **coverage** — per-item span trees cover ≥ 95 % of measured item wall
  time on a 16-item batch;
- **isolation** — telemetry never changes an answer, and disabled hooks
  cost < 5 % of a batch's runtime;
- **fault capture** — an item that faults still carries the telemetry
  recorded before the fault (exercised per injection site).

The polynomial-growth checks on sampling counters live at the bottom
under ``-m statistical``.
"""

from __future__ import annotations

import io
import time

import pytest

from repro.bench.harness import fit_growth_exponent, telemetry_table
from repro.core.estimator import PQEEngine
from repro.core.parallel import BatchItem
from repro.core.pqe_estimate import pqe_estimate
from repro.db.fact import Fact
from repro.db.probabilistic import ProbabilisticDatabase
from repro.errors import ReproError
from repro.lineage.build import build_lineage
from repro.lineage.karp_luby import karp_luby_probability
from repro.obs import (
    EvaluationTelemetry,
    SCHEDULING_SENSITIVE,
    active_telemetry,
    metric_inc,
    span,
    telemetry_scope,
)
from repro.obs.export import (
    read_trace,
    summarize_trace,
    telemetry_records,
    write_trace,
)
from repro.queries import parse_query, path_query
from repro.testing.faults import FAULT_SITES, FaultSpec, inject_faults
from repro.workloads import complete_layered_path_instance, uniform_half

RS_QUERY = parse_query("Q :- R(x, y), S(y, z)")
RST_QUERY = parse_query("Q :- R(x, y), S(y, z), T(z, w)")


def _path_pdb(paths: int = 4) -> ProbabilisticDatabase:
    labels: dict[Fact, str] = {}
    for i in range(paths):
        labels[Fact("R", (f"a{i}", f"a{i + 1}"))] = "1/2"
        labels[Fact("S", (f"a{i + 1}", f"b{i}"))] = "1/3"
        labels[Fact("T", (f"b{i}", f"c{i}"))] = "2/5"
    return ProbabilisticDatabase(labels)


def _mixed_items(count: int = 16) -> list[BatchItem]:
    """FPRAS-heavy items over two query shapes, sharing one cache."""
    pdb = _path_pdb()
    items = []
    for i in range(count):
        query = RS_QUERY if i % 2 == 0 else RST_QUERY
        items.append(BatchItem(query, pdb, method="fpras"))
    return items


def _item_telemetries(batch) -> list[EvaluationTelemetry]:
    collected = []
    for result in batch.results:
        telemetry = (
            result.answer.telemetry
            if result.answer is not None
            else result.error.telemetry
        )
        assert telemetry is not None
        collected.append(telemetry)
    return collected


# ---------------------------------------------------------------------------
# conservation


def _assert_conservation(metrics) -> None:
    lookups = metrics.counter("cache.lookups")
    hits = metrics.counter("cache.hits")
    misses = metrics.counter("cache.misses")
    assert hits + misses == lookups


@pytest.mark.parametrize("workers", [1, 4, 8])
def test_cache_counter_conservation(workers):
    engine = PQEEngine(seed=11)
    batch = engine.evaluate_batch(
        _mixed_items(), seed=11, max_workers=workers, telemetry=True
    )
    assert batch.telemetry.counter("cache.lookups") > 0
    _assert_conservation(batch.telemetry.metrics)
    for telemetry in _item_telemetries(batch):
        _assert_conservation(telemetry.metrics)


# ---------------------------------------------------------------------------
# span nesting


def _assert_nested(telemetry: EvaluationTelemetry) -> None:
    by_id = {record.span_id: record for record in telemetry.spans}
    for record in telemetry.spans:
        if record.parent_id is None:
            continue
        parent = by_id[record.parent_id]
        assert parent.started <= record.started
        assert record.ended <= parent.ended


def test_span_nesting_single_call():
    engine = PQEEngine(seed=5)
    answer = engine.probability(
        RS_QUERY, _path_pdb(), method="fpras", telemetry=True
    )
    telemetry = answer.telemetry
    assert telemetry is not None
    names = [record.name for record in telemetry.spans]
    assert "probability" in names
    assert "route.fpras" in names
    roots = telemetry.tracer.roots()
    assert len(roots) == 1 and roots[0].name == "probability"
    _assert_nested(telemetry)


@pytest.mark.parametrize("workers", [1, 4, 8])
def test_span_nesting_batch_items(workers):
    engine = PQEEngine(seed=5)
    batch = engine.evaluate_batch(
        _mixed_items(8), seed=5, max_workers=workers, telemetry=True
    )
    for telemetry in _item_telemetries(batch):
        roots = telemetry.tracer.roots()
        assert len(roots) == 1 and roots[0].name == "item"
        _assert_nested(telemetry)
    # Merged view keeps the per-item trees disjoint and well-formed.
    _assert_nested(batch.telemetry)
    assert len(batch.telemetry.tracer.roots()) == 8


# ---------------------------------------------------------------------------
# merge = sum of per-item registries


@pytest.mark.parametrize("workers", [1, 4, 8])
def test_batch_merge_equals_sum_of_items(workers):
    engine = PQEEngine(seed=3)
    batch = engine.evaluate_batch(
        _mixed_items(), seed=3, max_workers=workers, telemetry=True
    )
    folded = EvaluationTelemetry()
    for telemetry in _item_telemetries(batch):
        folded.merge(telemetry)
    assert folded.metrics.counters == batch.telemetry.metrics.counters
    assert folded.metrics.gauges == batch.telemetry.metrics.gauges
    assert (
        folded.metrics.histograms.keys()
        == batch.telemetry.metrics.histograms.keys()
    )
    for name, stats in folded.metrics.histograms.items():
        assert stats == batch.telemetry.metrics.histograms[name]
    assert len(folded.tracer) == len(batch.telemetry.tracer)


# ---------------------------------------------------------------------------
# determinism


def _counters_at(workers: int, seed: int = 23) -> dict:
    engine = PQEEngine(seed=seed)
    batch = engine.evaluate_batch(
        _mixed_items(), seed=seed, max_workers=workers, telemetry=True
    )
    return batch.telemetry.metrics.deterministic_counters()


def test_counters_identical_across_runs_and_worker_counts():
    baseline = _counters_at(1)
    assert baseline  # the workload must actually record counters
    for workers in (1, 4, 8):
        assert _counters_at(workers) == baseline
    # Repeat run, same seed: bitwise-identical again.
    assert _counters_at(4) == baseline


def test_scheduling_sensitive_counters_are_catalogued():
    # inflight waits cannot occur at workers=1; the name must therefore
    # be excluded from the determinism contract, and is.
    assert "cache.inflight_waits" in SCHEDULING_SENSITIVE
    engine = PQEEngine(seed=23)
    batch = engine.evaluate_batch(
        _mixed_items(), seed=23, max_workers=1, telemetry=True
    )
    assert batch.telemetry.counter("cache.inflight_waits") == 0
    assert (
        "cache.inflight_waits"
        not in batch.telemetry.metrics.deterministic_counters()
    )


def test_delta_counters_are_classified_history_dependent():
    """``delta.*`` instruments database mutation: how many artifacts a
    delta invalidates or spares depends on what earlier traffic warmed,
    so the family sits outside both the bitwise-determinism and the
    replay-stability contracts."""
    from repro.obs import (
        REPLAY_SENSITIVE_PREFIXES,
        SCHEDULING_SENSITIVE_PREFIXES,
        EvaluationTelemetry,
        telemetry_scope,
    )

    assert "delta." in SCHEDULING_SENSITIVE_PREFIXES
    assert "delta." in REPLAY_SENSITIVE_PREFIXES

    from repro.db import Delta, DeltaOp, Fact, VersionedDatabase

    telemetry = EvaluationTelemetry()
    vdb = VersionedDatabase(_path_pdb())
    some_fact = next(iter(vdb.pdb.probabilities))
    with telemetry_scope(telemetry):
        vdb.apply(Delta([DeltaOp.reweight(some_fact, "1/13")]))
    counters = telemetry.metrics.counters
    assert counters["delta.applied"] == 1
    assert counters["delta.ops"] == 1
    for name in counters:
        if name.startswith("delta."):
            assert (
                name not in telemetry.metrics.deterministic_counters()
            )
            assert (
                name not in telemetry.metrics.replay_stable_counters()
            )


def test_telemetry_does_not_change_answers():
    engine = PQEEngine(seed=7)
    plain = engine.evaluate_batch(_mixed_items(), seed=7)
    profiled = engine.evaluate_batch(_mixed_items(), seed=7, telemetry=True)
    assert plain.values == profiled.values
    assert plain.methods == profiled.methods
    # PQEAnswer equality ignores the telemetry attachment.
    assert plain.answers == profiled.answers


def test_no_collection_without_opt_in():
    engine = PQEEngine(seed=7)
    answer = engine.probability(RS_QUERY, _path_pdb(), method="fpras")
    assert answer.telemetry is None
    assert active_telemetry() is None
    batch = engine.evaluate_batch(_mixed_items(4), seed=7)
    assert batch.telemetry is None
    assert all(r.answer.telemetry is None for r in batch.results)


# ---------------------------------------------------------------------------
# coverage (acceptance gate)


def test_batch_span_coverage_at_least_95_percent():
    engine = PQEEngine(seed=41)
    batch = engine.evaluate_batch(
        _mixed_items(16), seed=41, max_workers=4, telemetry=True
    )
    items = [
        {"index": r.index, "ok": r.ok, "elapsed": r.elapsed}
        for r in batch.results
    ]
    summary = summarize_trace(
        list(telemetry_records(batch.telemetry, {"items": 16}, items))
    )
    assert summary["items"] == 16
    assert summary["coverage"] is not None
    assert summary["coverage"] >= 0.95


# ---------------------------------------------------------------------------
# export round-trip


def test_trace_roundtrip_and_summary():
    engine = PQEEngine(seed=13)
    batch = engine.evaluate_batch(
        _mixed_items(6), seed=13, max_workers=2, telemetry=True
    )
    items = [
        {"index": r.index, "ok": r.ok, "elapsed": r.elapsed}
        for r in batch.results
    ]
    buffer = io.StringIO()
    lines = write_trace(
        buffer, batch.telemetry, meta={"seed": 13}, items=items
    )
    buffer.seek(0)
    records = read_trace(buffer)
    assert len(records) == lines
    assert records[0]["type"] == "meta" and records[0]["seed"] == 13
    span_records = [r for r in records if r["type"] == "span"]
    assert len(span_records) == len(batch.telemetry.spans)
    counter_records = {
        r["name"]: r["value"] for r in records if r["type"] == "counter"
    }
    assert counter_records == batch.telemetry.metrics.counters
    summary = summarize_trace(records)
    assert summary["items"] == 6
    assert summary["phases"]["item"]["spans"] == 6
    assert summary["counters"] == counter_records


def test_read_trace_rejects_malformed_lines():
    with pytest.raises(ReproError):
        read_trace(io.StringIO("not json\n"))
    with pytest.raises(ReproError):
        read_trace(io.StringIO('{"no_type": 1}\n'))
    with pytest.raises(ReproError):
        read_trace(io.StringIO('[1, 2]\n'))


def test_telemetry_table_renders_phases():
    engine = PQEEngine(seed=2)
    answer = engine.probability(
        RS_QUERY, _path_pdb(), method="fpras", telemetry=True
    )
    rendered = telemetry_table(answer.telemetry).render()
    assert "route.fpras" in rendered
    assert "phase" in rendered


# ---------------------------------------------------------------------------
# fault capture: partial telemetry survives the fault


@pytest.mark.faults
def test_faulted_item_carries_partial_telemetry():
    # exact_set_cap=0 keeps the counter in its sampled regime, so every
    # item runs CountNFTA itself (sampled counts are never cached) and
    # the scoped fault deterministically hits item 2 only.
    engine = PQEEngine(seed=17, exact_set_cap=0)
    items = [
        BatchItem(RS_QUERY, _path_pdb(), method="fpras-weighted")
        for _ in range(6)
    ]
    with inject_faults(FaultSpec("counting.nfta", scope=2)):
        batch = engine.evaluate_batch(
            items, seed=17, max_workers=4, on_error="skip", telemetry=True
        )
    failed = [r for r in batch.results if not r.ok]
    assert [r.index for r in failed] == [2]
    error = failed[0].error
    assert error.telemetry is not None
    # The item root span closed on unwind and covers the fault window.
    roots = error.telemetry.tracer.roots()
    assert len(roots) == 1 and roots[0].name == "item"
    _assert_nested(error.telemetry)
    # Work done before the fault survives in the error record: the item
    # looked up its (possibly sibling-built) reduction before counting
    # faulted, and its route span closed around the failure.
    assert error.telemetry.counter("cache.lookups") > 0
    span_names = {record.name for record in error.telemetry.spans}
    assert "route.fpras-weighted" in span_names
    # The merged batch telemetry includes the faulted item's partial data.
    assert len(batch.telemetry.tracer.roots()) == 6
    # Healthy siblings are unaffected.
    for result in batch.results:
        if result.ok:
            assert result.answer.telemetry is not None


# One batch item whose evaluation passes through each injection site
# (``sampling.trees`` is only reachable via repro.core.sampling,
# ``decomposition.search`` needs a cyclic query, and ``serve.request``
# sits in the daemon's request path above the engine — covered
# elsewhere).
_SITE_ITEMS = {
    "reduction.pqe": ("fpras", "probability"),
    "reduction.ur": ("fpras", "reliability"),
    "lineage.build": ("karp-luby", "probability"),
    "lineage.karp_luby": ("karp-luby", "probability"),
    "counting.nfta": ("fpras", "probability"),
    "monte_carlo.sample": ("monte-carlo", "probability"),
    "rpq.count": ("exact", "rpq"),
}


def test_site_items_cover_engine_reachable_sites():
    unreachable = {
        "sampling.trees", "decomposition.search", "serve.request",
        "db.delta",
    }
    assert set(_SITE_ITEMS) == set(FAULT_SITES) - unreachable


@pytest.mark.faults
@pytest.mark.parametrize("site", sorted(_SITE_ITEMS))
def test_fault_matrix_partial_telemetry_every_site(site):
    """Whatever phase faults, the error record keeps what was measured."""
    method, task = _SITE_ITEMS[site]
    if task == "rpq":
        from repro.graphs import Edge, ProbabilisticGraph, RPQQuery

        database = ProbabilisticGraph.uniform(
            [Edge("s", "a", "m"), Edge("m", "b", "t")]
        )
        query = RPQQuery("a b", "s", "t")
    else:
        pdb = _path_pdb()
        database = pdb.instance if task == "reliability" else pdb
        query = RS_QUERY
    engine = PQEEngine(seed=29, exact_set_cap=0)
    items = [BatchItem(query, database, task=task, method=method)]
    with inject_faults(FaultSpec(site)):
        batch = engine.evaluate_batch(
            items, seed=29, max_workers=1, on_error="skip", telemetry=True
        )
    assert not batch.ok
    error = batch.results[0].error
    assert error.phase == site
    assert error.telemetry is not None
    roots = error.telemetry.tracer.roots()
    assert len(roots) == 1 and roots[0].name == "item"
    _assert_nested(error.telemetry)


# ---------------------------------------------------------------------------
# overhead guard (<5% when disabled)


def test_disabled_hooks_cost_under_five_percent():
    engine = PQEEngine(seed=19)
    items = _mixed_items(8)
    engine.evaluate_batch(items, seed=19, max_workers=1)  # warm caches

    started = time.perf_counter()
    engine.evaluate_batch(items, seed=19, max_workers=1)
    disabled_seconds = time.perf_counter() - started

    # Per-call cost of the disabled primitives, measured directly.
    calls = 50_000
    started = time.perf_counter()
    for _ in range(calls):
        with span("telemetry.noop"):
            pass
    span_cost = (time.perf_counter() - started) / calls
    started = time.perf_counter()
    for _ in range(calls):
        metric_inc("telemetry.noop")
    inc_cost = (time.perf_counter() - started) / calls

    # Estimate the event volume from an enabled run of the same batch.
    enabled = engine.evaluate_batch(
        items, seed=19, max_workers=1, telemetry=True
    )
    counters = enabled.telemetry.metrics.counters
    inc_events = sum(counters.values())
    span_events = len(enabled.telemetry.spans)

    projected = span_events * span_cost + inc_events * inc_cost
    assert projected < 0.05 * disabled_seconds, (
        f"disabled instrumentation projected at {projected:.6f}s "
        f"({span_events} spans, {inc_events} increments) vs "
        f"{disabled_seconds:.6f}s batch time"
    )


# ---------------------------------------------------------------------------
# scope plumbing


def test_telemetry_scope_nests_and_restores():
    outer = EvaluationTelemetry()
    inner = EvaluationTelemetry()
    assert active_telemetry() is None
    with telemetry_scope(outer):
        metric_inc("scope.outer")
        with telemetry_scope(inner):
            assert active_telemetry() is inner
            metric_inc("scope.inner")
        assert active_telemetry() is outer
    assert active_telemetry() is None
    assert outer.counter("scope.outer") == 1
    assert outer.counter("scope.inner") == 0
    assert inner.counter("scope.inner") == 1


def test_nested_engine_call_contributes_to_enclosing_scope():
    engine = PQEEngine(seed=31)
    enclosing = EvaluationTelemetry()
    with telemetry_scope(enclosing):
        answer = engine.probability(
            RS_QUERY, _path_pdb(), method="fpras", telemetry=True
        )
    # No second collector was created: the call joined the active one.
    assert answer.telemetry is None
    assert enclosing.counter("count_nfta.repetitions") >= 1


# ---------------------------------------------------------------------------
# statistical: counters track the theory's sampling effort


@pytest.mark.statistical
def test_karp_luby_samples_grow_quadratically_in_inverse_epsilon():
    instance = complete_layered_path_instance(3, 2)
    pdb = uniform_half(instance)
    formula = build_lineage(path_query(3), instance)
    epsilons = [0.4, 0.2, 0.1, 0.05]
    samples = []
    for epsilon in epsilons:
        telemetry = EvaluationTelemetry()
        with telemetry_scope(telemetry):
            karp_luby_probability(
                formula, pdb.probabilities, epsilon=epsilon, seed=1
            )
        samples.append(telemetry.counter("karp_luby.samples_drawn"))
    assert all(b > a for a, b in zip(samples, samples[1:]))
    slope = fit_growth_exponent(
        [1 / e for e in epsilons], [float(s) for s in samples]
    )
    # required_samples = ceil(3 m ln(2/δ) / ε²): exponent 2 in 1/ε.
    assert 1.8 <= slope <= 2.2


@pytest.mark.statistical
def test_count_nfta_sampling_grows_polynomially_in_inverse_epsilon():
    pdb = uniform_half(complete_layered_path_instance(3, 2))
    epsilons = [0.3, 0.15, 0.075]
    samples = []
    for epsilon in epsilons:
        telemetry = EvaluationTelemetry()
        with telemetry_scope(telemetry):
            result = pqe_estimate(
                path_query(3), pdb, epsilon=epsilon, seed=4,
                exact_set_cap=0,
            )
        assert not result.exact
        samples.append(telemetry.counter("count_nfta.samples_drawn"))
    assert all(b > a for a, b in zip(samples, samples[1:]))
    slope = fit_growth_exponent(
        [1 / e for e in epsilons], [float(s) for s in samples]
    )
    # Per-union budget is Θ(1/ε²); tolerate the constant 64-sample floor.
    assert 1.0 <= slope <= 2.5


@pytest.mark.statistical
def test_count_nfta_sampling_grows_polynomially_with_instance():
    widths = [2, 3, 4]
    sizes = []
    samples = []
    for width in widths:
        instance = complete_layered_path_instance(3, width)
        pdb = uniform_half(instance)
        telemetry = EvaluationTelemetry()
        with telemetry_scope(telemetry):
            pqe_estimate(
                path_query(3), pdb, epsilon=0.3, seed=4, exact_set_cap=0,
            )
        sizes.append(len(instance))
        samples.append(telemetry.counter("count_nfta.samples_drawn"))
    assert all(b > a for a, b in zip(samples, samples[1:]))
    slope = fit_growth_exponent(
        [float(s) for s in sizes], [float(s) for s in samples]
    )
    # Polynomial in |H| (Theorem 1), far from the 2^|D| of enumeration.
    assert 0.5 <= slope <= 6.0


@pytest.mark.statistical
def test_lineage_clause_counter_reproduces_blowup():
    """``lineage.clauses_built`` equals the hom count w^(i+1) on the
    complete layered 3-path — the Θ(|D|^|Q|) blow-up of the intro."""
    widths = [2, 3, 4, 5]
    sizes = []
    clauses = []
    for width in widths:
        instance = complete_layered_path_instance(3, width)
        telemetry = EvaluationTelemetry()
        with telemetry_scope(telemetry):
            build_lineage(path_query(3), instance)
        built = telemetry.counter("lineage.clauses_built")
        assert built == width ** 4
        assert (
            telemetry.counter("lineage.witnesses_enumerated") == built
        )
        sizes.append(len(instance))
        clauses.append(built)
    slope = fit_growth_exponent(
        [float(s) for s in sizes], [float(c) for c in clauses]
    )
    # |D| = 3w², clauses = w⁴ = (|D|/3)²: exponent 2 in |D|.
    assert 1.8 <= slope <= 2.2
