"""Tests for the Section 3 warm-up: path queries via NFA reduction."""

import random

import pytest
from hypothesis import given, settings
from hypothesis import strategies as st

from repro.core.exact import exact_uniform_reliability
from repro.core.path_estimate import build_path_nfa, path_estimate
from repro.db.fact import Fact
from repro.db.instance import DatabaseInstance
from repro.errors import QueryError, SelfJoinError
from repro.queries.builders import path_query, star_query
from repro.queries.cq import ConjunctiveQuery
from repro.queries.atoms import make_atom
from repro.queries.parser import parse_query
from repro.workloads.graphs import layered_path_instance


def _random_layered(seed: int):
    rng = random.Random(seed)
    length = rng.choice([2, 3])
    return path_query(length), layered_path_instance(
        length, 2, edge_probability=0.6, seed=seed
    )


class TestValidation:
    def test_rejects_non_path(self):
        with pytest.raises(QueryError):
            build_path_nfa(
                star_query(2), DatabaseInstance([Fact("R1", ("a", "b"))])
            )

    def test_rejects_self_join(self):
        q = ConjunctiveQuery(
            [make_atom("R", "x", "y"), make_atom("R", "y", "z")]
        )
        with pytest.raises(SelfJoinError):
            build_path_nfa(q, DatabaseInstance([Fact("R", ("a", "b"))]))

    def test_rejects_non_binary_facts(self):
        q = path_query(1)
        with pytest.raises(QueryError):
            build_path_nfa(q, DatabaseInstance([Fact("R1", ("a", "b", "c"))]))


class TestBijection:
    @given(st.integers(min_value=0, max_value=10_000))
    @settings(max_examples=20, deadline=None)
    def test_count_equals_ur(self, seed):
        query, instance = _random_layered(seed)
        if len(instance) > 14:
            instance = DatabaseInstance(list(instance)[:14])
        reduction = build_path_nfa(query, instance)
        automaton_count = (
            reduction.nfa.count_exact(reduction.string_length)
            * reduction.scale
        )
        assert automaton_count == exact_uniform_reliability(
            query, instance, method="enumerate"
        )

    def test_accepted_strings_have_consistent_order(self):
        query = path_query(2)
        instance = DatabaseInstance(
            [
                Fact("R1", ("a", "b")),
                Fact("R1", ("a", "c")),
                Fact("R2", ("b", "d")),
                Fact("R2", ("c", "d")),
            ]
        )
        reduction = build_path_nfa(query, instance)
        strings = set(
            reduction.nfa.enumerate_language(reduction.string_length)
        )
        # Each accepted string mentions each fact exactly once, in the
        # same global order.
        orders = set()
        for word in strings:
            facts = tuple(lit.fact for lit in word)
            assert len(set(facts)) == len(instance)
            orders.add(facts)
        assert len(orders) == 1

    def test_empty_relation_yields_zero(self):
        query = path_query(2)
        instance = DatabaseInstance([Fact("R1", ("a", "b"))])
        reduction = build_path_nfa(query, instance)
        assert reduction.nfa.count_exact(reduction.string_length) == 0

    def test_dropped_facts_scale(self):
        query = path_query(1)
        instance = DatabaseInstance(
            [Fact("R1", ("a", "b")), Fact("Other", ("z", "w"))]
        )
        reduction = build_path_nfa(query, instance)
        assert reduction.dropped_facts == 1
        assert reduction.scale == 2
        total = (
            reduction.nfa.count_exact(reduction.string_length)
            * reduction.scale
        )
        assert total == exact_uniform_reliability(
            query, instance, method="enumerate"
        )

    def test_atom_order_in_query_object_irrelevant(self):
        # Scrambled presentation of the same path query.
        q = parse_query("R2(y, z), R1(x, y), R3(z, w)")
        instance = layered_path_instance(3, 2, 0.8, seed=5)
        reduction = build_path_nfa(q, instance)
        assert reduction.relation_order == ("R1", "R2", "R3")


class TestEstimator:
    @pytest.mark.parametrize("seed", range(4))
    def test_fpras_within_envelope(self, seed):
        query, instance = _random_layered(seed)
        truth = exact_uniform_reliability(query, instance, method="lineage")
        estimate = path_estimate(
            query, instance, epsilon=0.2, seed=seed, repetitions=3
        )
        if truth == 0:
            assert estimate.estimate == 0
        else:
            assert abs(estimate.estimate - truth) / truth < 0.4

    def test_polynomial_automaton_size(self):
        # NFA stays polynomial as the query grows (combined complexity!).
        sizes = []
        for length in (2, 4, 6):
            query = path_query(length)
            instance = layered_path_instance(length, 2, 1.0, seed=0)
            reduction = build_path_nfa(query, instance)
            sizes.append(reduction.nfa.num_transitions)
        # Roughly linear growth in query length here; certainly not
        # exponential (each level multiplies by < 2).
        assert sizes[2] < sizes[0] * 8

    def test_result_metadata(self):
        query, instance = _random_layered(1)
        estimate = path_estimate(query, instance, seed=0)
        assert estimate.nfa_states > 0
        assert estimate.string_length == len(instance)
        assert float(estimate) == estimate.estimate


class TestWitnessNfa:
    def test_counts_homomorphisms(self):
        from repro.core.path_estimate import build_witness_nfa
        from repro.db.semantics import count_homomorphisms

        for seed in range(4):
            query = path_query(3)
            instance = layered_path_instance(3, 3, 0.5, seed=seed)
            nfa, n = build_witness_nfa(query, instance)
            assert n == 3
            assert nfa.count_exact(n) == count_homomorphisms(
                query, instance
            )

    def test_empty_relation(self):
        from repro.core.path_estimate import build_witness_nfa

        query = path_query(2)
        instance = DatabaseInstance([Fact("R1", ("a", "b"))])
        nfa, n = build_witness_nfa(query, instance)
        assert nfa.count_exact(n) == 0


class TestPathPqe:
    def test_exact_matches_ground_truth(self):
        from repro.core.exact import exact_probability
        from repro.core.path_estimate import path_pqe_estimate
        from repro.workloads.instances import random_probabilities

        for seed in range(4):
            query = path_query(2)
            instance = layered_path_instance(2, 2, 0.7, seed=seed)
            pdb = random_probabilities(
                instance, seed=seed, max_denominator=4,
                include_extremes=True,
            )
            truth = float(exact_probability(query, pdb, method="lineage"))
            result = path_pqe_estimate(query, pdb, method="exact")
            assert result.estimate == __import__("pytest").approx(
                truth, abs=1e-12
            )

    def test_fpras_within_envelope(self):
        from repro.core.exact import exact_probability
        from repro.core.path_estimate import path_pqe_estimate
        from repro.workloads.instances import random_probabilities

        query = path_query(3)
        instance = layered_path_instance(3, 2, 0.8, seed=7)
        pdb = random_probabilities(instance, seed=8, max_denominator=3)
        truth = float(exact_probability(query, pdb, method="lineage"))
        result = path_pqe_estimate(
            query, pdb, epsilon=0.2, seed=9, exact_set_cap=0,
            repetitions=3,
        )
        assert abs(result.estimate - truth) / truth < 0.4

    def test_agrees_with_tree_pipeline(self):
        from repro.core.path_estimate import path_pqe_estimate
        from repro.core.pqe_estimate import pqe_estimate
        from repro.workloads.instances import random_probabilities

        query = path_query(2)
        instance = layered_path_instance(2, 2, 0.7, seed=3)
        pdb = random_probabilities(instance, seed=4, max_denominator=4)
        nfa_result = path_pqe_estimate(query, pdb, method="exact")
        tree_result = pqe_estimate(query, pdb, method="exact-weighted")
        assert nfa_result.estimate == __import__("pytest").approx(
            tree_result.estimate, abs=1e-12
        )

    def test_unknown_method(self):
        from repro.core.path_estimate import path_pqe_estimate
        from repro.workloads.instances import random_probabilities

        query = path_query(2)
        instance = layered_path_instance(2, 2, 0.7, seed=1)
        pdb = random_probabilities(instance, seed=1)
        with pytest.raises(ValueError):
            path_pqe_estimate(query, pdb, method="bogus")
