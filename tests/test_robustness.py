"""Robustness tests: awkward inputs through the full pipelines."""

from fractions import Fraction

import pytest

from repro.core.exact import exact_probability
from repro.core.pqe_estimate import build_pqe_reduction, pqe_estimate
from repro.core.ur_reduction import build_ur_reduction
from repro.core.estimator import PQEEngine
from repro.db.fact import Fact
from repro.db.instance import DatabaseInstance
from repro.db.probabilistic import ProbabilisticDatabase
from repro.queries.builders import path_query
from repro.queries.parser import parse_query


class TestExoticConstants:
    def test_integer_constants(self):
        query = path_query(2)
        pdb = ProbabilisticDatabase(
            {
                Fact("R1", (1, 2)): "1/2",
                Fact("R2", (2, 3)): "1/3",
            }
        )
        truth = exact_probability(query, pdb, method="enumerate")
        automaton = pqe_estimate(query, pdb, method="exact-automaton")
        assert automaton.estimate == pytest.approx(float(truth))

    def test_mixed_type_constants(self):
        query = path_query(2)
        pdb = ProbabilisticDatabase(
            {
                Fact("R1", ("a", 7)): "1/2",
                Fact("R1", (0, 7)): "1/2",
                Fact("R2", (7, ("tuple", "const"))): "1/3",
            }
        )
        truth = exact_probability(query, pdb, method="enumerate")
        automaton = pqe_estimate(query, pdb, method="exact-weighted")
        assert automaton.estimate == pytest.approx(float(truth))

    def test_unicode_names(self):
        query = parse_query("Straße(x, y), Güter(y, z)")
        pdb = ProbabilisticDatabase(
            {
                Fact("Straße", ("münchen", "köln")): "1/2",
                Fact("Güter", ("köln", "北京")): "2/3",
            }
        )
        truth = exact_probability(query, pdb, method="enumerate")
        assert truth == Fraction(1, 3)
        result = pqe_estimate(query, pdb, method="exact-automaton")
        assert result.estimate == pytest.approx(float(truth))


class TestExtremeProbabilities:
    def test_large_denominators(self):
        # 997/1000: positive gadget u(997)=10 bits, negative u(3)=2 →
        # padded to 10 each.
        query = path_query(1)
        fact = Fact("R1", ("a", "b"))
        pdb = ProbabilisticDatabase({fact: Fraction(997, 1000)})
        reduction = build_pqe_reduction(query, pdb)
        assert reduction.tree_size == 1 + 10
        result = pqe_estimate(query, pdb, method="exact-automaton")
        assert result.estimate == pytest.approx(0.997)
        weighted = pqe_estimate(query, pdb, method="exact-weighted")
        assert weighted.estimate == pytest.approx(0.997)

    def test_all_zero_probabilities(self):
        query = path_query(2)
        pdb = ProbabilisticDatabase(
            {
                Fact("R1", ("a", "b")): 0,
                Fact("R2", ("b", "c")): 0,
            }
        )
        assert pqe_estimate(query, pdb, method="exact-automaton").estimate == 0
        assert pqe_estimate(query, pdb, method="exact-weighted").estimate == 0

    def test_mixed_zero_and_one(self):
        query = path_query(2)
        pdb = ProbabilisticDatabase(
            {
                Fact("R1", ("a", "b")): 1,
                Fact("R1", ("a", "z")): 0,
                Fact("R2", ("b", "c")): "1/2",
                Fact("R2", ("z", "c")): 1,
            }
        )
        truth = float(exact_probability(query, pdb, method="enumerate"))
        assert truth == 0.5
        for method in ("exact-automaton", "exact-weighted"):
            assert pqe_estimate(
                query, pdb, method=method
            ).estimate == pytest.approx(truth)

    def test_prime_denominators(self):
        query = path_query(1)
        pdb = ProbabilisticDatabase(
            {
                Fact("R1", ("a", "b")): Fraction(6, 7),
                Fact("R1", ("c", "d")): Fraction(10, 11),
            }
        )
        truth = float(exact_probability(query, pdb, method="enumerate"))
        result = pqe_estimate(query, pdb, method="exact-automaton")
        assert result.estimate == pytest.approx(truth)
        assert result.reduction.denominator == 77


class TestMissingRelations:
    def test_engine_handles_missing_relation(self):
        query = path_query(2)
        pdb = ProbabilisticDatabase({Fact("R1", ("a", "b")): "1/2"})
        engine = PQEEngine(seed=0)
        answer = engine.probability(query, pdb)
        assert answer.value == 0

    def test_fpras_handles_missing_relation(self):
        query = path_query(2)
        pdb = ProbabilisticDatabase({Fact("R1", ("a", "b")): "1/2"})
        result = pqe_estimate(query, pdb, seed=0)
        assert result.estimate == 0

    def test_ur_reduction_on_empty_projection(self):
        query = path_query(2)
        instance = DatabaseInstance([Fact("Unrelated", ("x",))])
        reduction = build_ur_reduction(query, instance)
        assert reduction.tree_size == 0 or reduction.tree_size >= 0


class TestScale:
    def test_long_query_construction(self):
        # Combined complexity: a 20-atom query must still construct
        # quickly on a small instance.
        query = path_query(20)
        facts = [
            Fact(f"R{i}", (f"v{i}", f"v{i + 1}")) for i in range(1, 21)
        ]
        instance = DatabaseInstance(facts)
        reduction = build_ur_reduction(query, instance)
        assert reduction.nfta.num_transitions < 10_000
        from repro.automata.nfta_counting import count_nfta_exact

        # Single witness chain: UR = 1.
        assert count_nfta_exact(reduction.nfta, reduction.tree_size) == 1

    def test_wide_relation_construction(self):
        query = path_query(2)
        facts = [Fact("R1", ("a", f"m{i}")) for i in range(20)]
        facts += [Fact("R2", (f"m{i}", "z")) for i in range(20)]
        instance = DatabaseInstance(facts)
        reduction = build_ur_reduction(query, instance)
        # |S| and |Δ| stay polynomial in |D|.
        assert reduction.nfta.num_transitions < 40 * 40 * 10
