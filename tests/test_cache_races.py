"""Eviction-race tests for the shared reduction cache.

PR 1's accounting contract says hit/miss totals are a function of the
request multiset alone.  That is easy to uphold when the cache is big
enough to never evict; these tests hammer a cache sized *at* the
working-set boundary — the regime an ``exact_set_cap``-limited serving
deployment actually runs in, where every lookup can race an eviction —
and assert the conservation law ``hits + misses == lookups`` plus the
structural invariants (entry count bounded by ``maxsize``, evictions
consistent with the miss count) survive.
"""

import threading
from concurrent.futures import ThreadPoolExecutor

import pytest

from repro.core.cache import ReductionCache
from repro.core.diskcache import DiskCache
from repro.core.estimator import PQEEngine
from repro.core.parallel import BatchItem
from repro.db.fact import Fact
from repro.db.probabilistic import ProbabilisticDatabase
from repro.errors import ReproError


def _hammer(cache: ReductionCache, threads: int, rounds: int, keys: int):
    """``threads`` workers each touch every key ``rounds`` times."""
    barrier = threading.Barrier(threads)

    def worker(_):
        barrier.wait()
        for round_number in range(rounds):
            for key in range(keys):
                value = cache.get_or_build(key, lambda k=key: k * 2)
                assert value == key * 2

    with ThreadPoolExecutor(max_workers=threads) as pool:
        list(pool.map(worker, range(threads)))
    return threads * rounds * keys


class TestConservationUnderEviction:
    @pytest.mark.parametrize("maxsize", [1, 2, 3, 4])
    def test_hits_plus_misses_equals_lookups(self, maxsize):
        # maxsize < keys: every round cycles entries through eviction,
        # so lookups race evictions constantly.
        cache = ReductionCache(maxsize=maxsize)
        lookups = _hammer(cache, threads=8, rounds=20, keys=4)
        stats = cache.stats
        assert stats.lookups == lookups
        assert stats.hits + stats.misses == lookups
        assert len(cache) <= maxsize

    def test_eviction_count_matches_overflow(self):
        # Sequentially: k distinct keys through a size-1 cache evict
        # exactly k-1 times — the race-free baseline the threaded runs
        # must stay consistent with.
        cache = ReductionCache(maxsize=1)
        for key in range(5):
            cache.get_or_build(key, lambda k=key: k)
        assert cache.stats == type(cache.stats)(
            hits=0, misses=5, evictions=4
        )

    def test_evictions_never_exceed_stores(self):
        cache = ReductionCache(maxsize=2)
        _hammer(cache, threads=6, rounds=10, keys=5)
        stats = cache.stats
        # Every eviction displaces a previously stored (missed) entry.
        assert stats.evictions <= stats.misses
        assert len(cache) <= 2

    def test_unbounded_cache_never_evicts(self):
        cache = ReductionCache(maxsize=None)
        _hammer(cache, threads=4, rounds=5, keys=8)
        assert cache.stats.evictions == 0
        assert len(cache) == 8

    def test_cache_if_rejection_races(self):
        # Rejected values are returned but never stored: under eviction
        # pressure the conservation law must still hold and rejected
        # keys must never appear in the cache.
        cache = ReductionCache(maxsize=2)

        def worker(_):
            for key in range(4):
                cache.get_or_build(
                    key,
                    lambda k=key: k,
                    cache_if=lambda value: value % 2 == 0,
                )

        with ThreadPoolExecutor(max_workers=6) as pool:
            list(pool.map(worker, range(6)))
        assert cache.stats.lookups == 6 * 4
        assert 1 not in cache and 3 not in cache

    def test_disk_tier_preserves_conservation(self, tmp_path):
        cache = ReductionCache(
            maxsize=2, disk=DiskCache(tmp_path / "cache")
        )
        lookups = _hammer(cache, threads=6, rounds=10, keys=4)
        stats = cache.stats
        assert stats.lookups == lookups
        # Evicted entries come back from disk as (memory) misses, never
        # as phantom hits.
        assert stats.hits + stats.misses == lookups

    def test_maxsize_validation(self):
        with pytest.raises(ReproError):
            ReductionCache(maxsize=0)


class TestBatchAccountingAtTheBoundary:
    """End-to-end: a batch over an eviction-pressured shared cache keeps
    worker-count-independent traffic, the serving property PR 1 pinned
    at ``exact_set_cap`` scale."""

    def _items(self, rs_query):
        items = []
        for shift in range(6):
            labels = {}
            for i in range(3):
                labels[Fact("R", (f"a{i + shift}", f"b{i}"))] = "1/2"
                labels[Fact("S", (f"b{i}", f"c{i}"))] = "2/3"
            items.append(
                BatchItem(
                    rs_query, ProbabilisticDatabase(labels), method="fpras"
                )
            )
        return items

    @pytest.mark.parametrize("maxsize", [1, 2])
    def test_lookups_and_values_are_worker_count_independent(
        self, rs_query, maxsize
    ):
        # Under eviction pressure the hit/miss *split* legitimately
        # depends on interleaving (a sibling may or may not have evicted
        # the key first) — but the conservation total and the answers
        # must not.
        items = self._items(rs_query)
        engine = PQEEngine(seed=3, exact_set_cap=512)
        outcomes = {}
        for workers in (1, 4):
            cache = ReductionCache(maxsize=maxsize)
            batch = engine.evaluate_batch(
                items, seed=3, max_workers=workers, cache=cache
            )
            outcomes[workers] = (
                batch.values,
                batch.cache_stats.hits + batch.cache_stats.misses,
            )
        assert outcomes[1] == outcomes[4]

    def test_roomy_cache_restores_full_traffic_identity(self, rs_query):
        # Away from the boundary the stronger PR 1 contract holds: the
        # exact (hits, misses) pair is worker-count independent.
        items = self._items(rs_query)
        engine = PQEEngine(seed=3, exact_set_cap=512)
        outcomes = {}
        for workers in (1, 4):
            batch = engine.evaluate_batch(
                items, seed=3, max_workers=workers,
                cache=ReductionCache(maxsize=128),
            )
            outcomes[workers] = (
                batch.values,
                (batch.cache_stats.hits, batch.cache_stats.misses),
            )
        assert outcomes[1] == outcomes[4]
