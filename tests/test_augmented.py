"""Tests for augmented NFTAs and their translation (Section 4.1)."""

import pytest

from repro.automata.augmented import (
    AnnotatedSymbol,
    AugmentedNFTA,
    default_polarize,
)
from repro.automata.nfta_counting import count_nfta_exact
from repro.automata.symbols import Literal
from repro.automata.trees import LabeledTree, leaf, path_tree
from repro.db.fact import Fact
from repro.errors import AutomatonError


def A(symbol, optional=False):
    return AnnotatedSymbol(symbol, optional)


class TestAnnotatedSymbol:
    def test_str(self):
        assert str(A("x")) == "x"
        assert str(A("x", True)) == "x?"


class TestPolarize:
    def test_facts_become_literals(self):
        fact = Fact("R", ("a",))
        assert default_polarize(fact, True) == Literal(fact, True)
        assert default_polarize(fact, False) == Literal(fact, False)

    def test_generic_symbols(self):
        assert default_polarize("x", True) == "x"
        assert default_polarize("x", False) == ("¬", "x")


class TestTranslation:
    def test_plain_symbol_accepts_positive_only(self):
        aug = AugmentedNFTA([("s", (A("x"),), ())], initial="s")
        nfta = aug.translate()
        assert nfta.accepts(leaf("x"))
        assert not nfta.accepts(leaf(("¬", "x")))

    def test_optional_symbol_accepts_both(self):
        aug = AugmentedNFTA([("s", (A("x", True),), ())], initial="s")
        nfta = aug.translate()
        assert nfta.accepts(leaf("x"))
        assert nfta.accepts(leaf(("¬", "x")))

    def test_string_annotation_unrolls_to_chain(self):
        aug = AugmentedNFTA(
            [("s", (A("x"), A("y"), A("z")), ())], initial="s"
        )
        nfta = aug.translate()
        assert nfta.accepts(path_tree(["x", "y", "z"]))
        assert not nfta.accepts(path_tree(["x", "z", "y"]))
        assert not nfta.accepts(path_tree(["x", "y"]))

    def test_question_marks_multiply_language(self):
        # x? y z?: four chains of length 3.
        aug = AugmentedNFTA(
            [("s", (A("x", True), A("y"), A("z", True)), ())],
            initial="s",
        )
        assert count_nfta_exact(aug.translate(), 3) == 4

    def test_chain_states_count(self):
        # Annotation of length j adds j-1 fresh states (Remark 1).
        aug = AugmentedNFTA(
            [("s", tuple(A(f"g{i}") for i in range(5)), ())],
            initial="s",
        )
        nfta = aug.translate()
        assert len(nfta.states) == 1 + 4

    def test_annotation_feeding_children(self):
        aug = AugmentedNFTA(
            [
                ("s", (A("r"), A("m")), ("c1", "c2")),
                ("c1", (A("a"),), ()),
                ("c2", (A("b"),), ()),
            ],
            initial="s",
        )
        nfta = aug.translate()
        tree = LabeledTree(
            "r", (LabeledTree("m", (leaf("a"), leaf("b"))),)
        )
        assert nfta.accepts(tree)

    def test_lambda_annotation_splices(self):
        aug = AugmentedNFTA(
            [
                ("root", (A("r"),), ("m",)),
                ("m", (), ("p", "q")),
                ("p", (A("a"),), ()),
                ("q", (A("b"),), ()),
            ],
            initial="root",
        )
        nfta = aug.translate()
        assert nfta.accepts(LabeledTree("r", (leaf("a"), leaf("b"))))

    def test_lambda_kept_when_not_eliminated(self):
        aug = AugmentedNFTA(
            [("root", (A("r"),), ("m",)), ("m", (), ())], initial="root"
        )
        assert aug.translate(eliminate_lambda=False).has_lambda

    def test_root_lambda_multi_child_raises(self):
        aug = AugmentedNFTA(
            [
                ("s", (), ("p", "q")),
                ("p", (A("a"),), ()),
                ("q", (A("b"),), ()),
            ],
            initial="s",
        )
        with pytest.raises(AutomatonError):
            aug.translate()

    def test_invalid_annotation_type(self):
        with pytest.raises(AutomatonError):
            AugmentedNFTA([("s", ("bare",), ())], initial="s")

    def test_encoding_size(self):
        aug = AugmentedNFTA(
            [("s", (A("x"), A("y")), ("c",)), ("c", (A("z"),), ())],
            initial="s",
        )
        assert aug.encoding_size == (2 + 2 + 1) + (2 + 1 + 0)

    def test_custom_polarize(self):
        aug = AugmentedNFTA(
            [("s", (A("x", True),), ())],
            initial="s",
            polarize=lambda symbol, pos: (symbol, pos),
        )
        nfta = aug.translate()
        assert nfta.accepts(leaf(("x", True)))
        assert nfta.accepts(leaf(("x", False)))
