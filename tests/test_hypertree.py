"""Unit tests for the hypertree decomposition data structure."""

import pytest

from repro.decomposition.hypertree import (
    HypertreeDecomposition,
    HypertreeNode,
)
from repro.errors import DecompositionError
from repro.queries.atoms import Variable, make_atom
from repro.queries.cq import ConjunctiveQuery


def _v(*names):
    return frozenset(Variable(n) for n in names)


def _chain_decomposition():
    """Valid width-1 join tree for R(x,y), S(y,z)."""
    r = make_atom("R", "x", "y")
    s = make_atom("S", "y", "z")
    q = ConjunctiveQuery([r, s])
    nodes = [
        HypertreeNode(0, _v("x", "y"), (r,)),
        HypertreeNode(1, _v("y", "z"), (s,)),
    ]
    return HypertreeDecomposition(q, nodes, [-1, 0]), r, s


class TestConstructionValidation:
    def test_node_id_order_enforced(self):
        r = make_atom("R", "x")
        q = ConjunctiveQuery([r])
        with pytest.raises(DecompositionError):
            HypertreeDecomposition(
                q, [HypertreeNode(1, _v("x"), (r,))], [-1]
            )

    def test_parent_before_child(self):
        r = make_atom("R", "x")
        s = make_atom("S", "x")
        q = ConjunctiveQuery([r, s])
        nodes = [
            HypertreeNode(0, _v("x"), (r,)),
            HypertreeNode(1, _v("x"), (s,)),
        ]
        with pytest.raises(DecompositionError):
            HypertreeDecomposition(q, nodes, [-1, 1])

    def test_root_parent_must_be_minus_one(self):
        r = make_atom("R", "x")
        q = ConjunctiveQuery([r])
        with pytest.raises(DecompositionError):
            HypertreeDecomposition(
                q, [HypertreeNode(0, _v("x"), (r,))], [0]
            )

    def test_empty_rejected(self):
        q = ConjunctiveQuery([make_atom("R", "x")])
        with pytest.raises(DecompositionError):
            HypertreeDecomposition(q, [], [])


class TestStructure:
    def test_children_and_depths(self):
        d, _r, _s = _chain_decomposition()
        assert d.children_map[0] == (1,)
        assert d.depths == (0, 1)

    def test_subtree_ids(self):
        d, _r, _s = _chain_decomposition()
        assert d.subtree_ids(0) == frozenset({0, 1})
        assert d.subtree_ids(1) == frozenset({1})

    def test_vertex_order_depth_compatible(self):
        d, _r, _s = _chain_decomposition()
        order = d.vertex_order
        depths = [d.depths[i] for i in order]
        assert depths == sorted(depths)

    def test_width(self):
        d, _r, _s = _chain_decomposition()
        assert d.width == 1


class TestCovering:
    def test_covering_vertices(self):
        d, r, s = _chain_decomposition()
        assert d.covering_vertices(r) == (0,)
        assert d.covering_vertices(s) == (1,)

    def test_minimal_covering_vertex(self):
        d, r, s = _chain_decomposition()
        assert d.minimal_covering_vertex[r] == 0
        assert d.minimal_covering_vertex[s] == 1

    def test_atoms_minimally_covered_at(self):
        d, r, s = _chain_decomposition()
        assert d.atoms_minimally_covered_at(0) == (r,)
        assert d.atoms_minimally_covered_at(1) == (s,)


class TestValidation:
    def test_valid_decomposition(self):
        d, _r, _s = _chain_decomposition()
        report = d.validate()
        assert report.is_hd
        assert report.complete
        assert report.usable_for_construction
        assert report.problems == ()

    def test_condition1_violation_detected(self):
        r = make_atom("R", "x", "y")
        s = make_atom("S", "y", "z")
        q = ConjunctiveQuery([r, s])
        # Only cover R; S's variables never co-occur in any chi.
        nodes = [HypertreeNode(0, _v("x", "y"), (r,))]
        report = HypertreeDecomposition(q, nodes, [-1]).validate()
        assert not report.covers_all_atoms
        assert not report.complete

    def test_condition2_violation_detected(self):
        # x appears at nodes 0 and 2 but not at the middle node 1.
        r = make_atom("R", "x", "y")
        s = make_atom("S", "y", "z")
        t = make_atom("T", "x", "z")
        q = ConjunctiveQuery([r, s, t])
        nodes = [
            HypertreeNode(0, _v("x", "y"), (r,)),
            HypertreeNode(1, _v("y", "z"), (s,)),
            HypertreeNode(2, _v("x", "z"), (t,)),
        ]
        report = HypertreeDecomposition(q, nodes, [-1, 0, 1]).validate()
        assert not report.connected

    def test_condition3_violation_detected(self):
        r = make_atom("R", "x", "y")
        q = ConjunctiveQuery([r])
        # chi contains a variable not in vars(xi).
        nodes = [HypertreeNode(0, _v("x", "y", "z"), (r,))]
        report = HypertreeDecomposition(q, nodes, [-1]).validate()
        assert not report.chi_within_xi_vars

    def test_condition4_violation_detected(self):
        # Node 0 has xi variable z that reappears in a descendant's chi
        # without being in chi(0).
        r = make_atom("R", "x", "z")
        s = make_atom("S", "x", "y")
        t = make_atom("T", "y", "z")
        q = ConjunctiveQuery([r, s, t])
        nodes = [
            HypertreeNode(0, _v("x"), (r,)),
            HypertreeNode(1, _v("x", "y"), (s,)),
            HypertreeNode(2, _v("y", "z"), (t,)),
        ]
        d = HypertreeDecomposition(q, nodes, [-1, 0, 1])
        report = d.validate()
        assert not report.descendant_condition
        # But it is still a (generalized) decomposition-candidate check:
        assert not report.is_hd
