"""Unit tests for the NFTA substrate: membership, λ-elimination, trim."""

import pytest

from repro.automata.nfta import LAMBDA, NFTA
from repro.automata.trees import LabeledTree, leaf, path_tree
from repro.errors import AutomatonError


def _binary_tree_automaton() -> NFTA:
    """Accepts trees over a (leaf or binary) and b (unary)."""
    return NFTA(
        [
            ("q", "a", ()),
            ("q", "a", ("q", "q")),
            ("q", "b", ("q",)),
        ],
        initial="q",
    )


class TestMembership:
    def test_leaf(self):
        assert _binary_tree_automaton().accepts(leaf("a"))

    def test_unary_chain(self):
        assert _binary_tree_automaton().accepts(path_tree(["b", "b", "a"]))

    def test_binary(self):
        tree = LabeledTree("a", (leaf("a"), leaf("a")))
        assert _binary_tree_automaton().accepts(tree)

    def test_rejects_wrong_arity(self):
        # b as a leaf has no transition.
        assert not _binary_tree_automaton().accepts(leaf("b"))

    def test_rejects_unknown_symbol(self):
        assert not _binary_tree_automaton().accepts(leaf("z"))

    def test_derivable_states(self):
        nfta = NFTA(
            [("p", "a", ()), ("q", "a", ()), ("q", "b", ("p",))],
            initial="q",
        )
        assert nfta.derivable_states(leaf("a")) == frozenset({"p", "q"})
        assert nfta.derivable_states(path_tree(["b", "a"])) == frozenset(
            {"q"}
        )

    def test_membership_requires_lambda_free(self):
        nfta = NFTA([("s", LAMBDA, ("t",)), ("t", "a", ())], initial="s")
        with pytest.raises(AutomatonError):
            nfta.accepts(leaf("a"))


class TestLambdaElimination:
    def test_single_child_splice(self):
        nfta = NFTA(
            [("s", LAMBDA, ("t",)), ("t", "a", ())], initial="s"
        ).eliminate_lambda()
        assert not nfta.has_lambda
        assert nfta.accepts(leaf("a"))

    def test_multi_child_splice(self):
        # root reads r, its child m splices into two leaves.
        nfta = NFTA(
            [
                ("root", "r", ("m",)),
                ("m", LAMBDA, ("p", "q")),
                ("p", "a", ()),
                ("q", "b", ()),
            ],
            initial="root",
        ).eliminate_lambda()
        tree = LabeledTree("r", (leaf("a"), leaf("b")))
        assert nfta.accepts(tree)
        assert not nfta.accepts(LabeledTree("r", (leaf("a"),)))

    def test_cascaded_lambda(self):
        nfta = NFTA(
            [
                ("root", "r", ("m1",)),
                ("m1", LAMBDA, ("m2",)),
                ("m2", LAMBDA, ("p",)),
                ("p", "a", ()),
            ],
            initial="root",
        ).eliminate_lambda()
        assert nfta.accepts(LabeledTree("r", (leaf("a"),)))

    def test_lambda_cycle_rejected(self):
        nfta = NFTA(
            [("s", LAMBDA, ("t",)), ("t", LAMBDA, ("s",))], initial="s"
        )
        with pytest.raises(AutomatonError):
            nfta.eliminate_lambda()

    def test_root_multi_child_lambda_rejected(self):
        nfta = NFTA(
            [
                ("s", LAMBDA, ("p", "q")),
                ("p", "a", ()),
                ("q", "b", ()),
            ],
            initial="s",
        )
        with pytest.raises(AutomatonError):
            nfta.eliminate_lambda()

    def test_root_single_child_lambda(self):
        nfta = NFTA(
            [("s", LAMBDA, ("t",)), ("t", "a", ())], initial="s"
        ).eliminate_lambda()
        assert nfta.accepts(leaf("a"))

    def test_state_with_both_lambda_and_symbol_transitions(self):
        # m can either read 'c' itself or splice into a leaf pair.
        nfta = NFTA(
            [
                ("root", "r", ("m",)),
                ("m", "c", ()),
                ("m", LAMBDA, ("p", "q")),
                ("p", "a", ()),
                ("q", "b", ()),
            ],
            initial="root",
        ).eliminate_lambda()
        assert nfta.accepts(LabeledTree("r", (leaf("c"),)))
        assert nfta.accepts(LabeledTree("r", (leaf("a"), leaf("b"))))

    def test_noop_when_lambda_free(self):
        nfta = _binary_tree_automaton()
        assert nfta.eliminate_lambda() is nfta


class TestTrim:
    def test_removes_unproductive(self):
        nfta = NFTA(
            [("q", "a", ()), ("q", "b", ("dead",))], initial="q"
        )
        trimmed = nfta.trimmed()
        assert "dead" not in trimmed.states
        assert trimmed.accepts(leaf("a"))

    def test_removes_unreachable(self):
        nfta = NFTA(
            [("q", "a", ()), ("island", "b", ())], initial="q"
        )
        trimmed = nfta.trimmed()
        assert "island" not in trimmed.states

    def test_empty_language(self):
        nfta = NFTA([("q", "a", ("q",))], initial="q")  # no leaf rule
        trimmed = nfta.trimmed()
        assert trimmed.num_transitions == 0


class TestSizeAnalysis:
    def test_possible_sizes_chain(self):
        nfta = NFTA(
            [("q", "b", ("q",)), ("q", "a", ())], initial="q"
        )
        masks = nfta.possible_sizes(5)
        # Chains of any length 1..5 are derivable from q.
        assert masks["q"] == 0b111110

    def test_possible_sizes_binary(self):
        nfta = _binary_tree_automaton()
        masks = nfta.possible_sizes(6)
        for s in range(1, 7):
            assert masks["q"] & (1 << s)

    def test_possible_sizes_parity(self):
        # Only binary branching from a leaf base: sizes 1, 3, 5, ...
        nfta = NFTA(
            [("q", "a", ()), ("q", "a", ("q", "q"))], initial="q"
        )
        masks = nfta.possible_sizes(7)
        assert masks["q"] == 0b10101010

    def test_structure_properties(self):
        nfta = _binary_tree_automaton()
        assert nfta.num_transitions == 3
        assert nfta.max_arity == 2
        assert nfta.encoding_size == (2 + 0) + (2 + 2) + (2 + 1)
