"""The vectorized backend's own contracts: overflow and degradation.

Two properties the three-backend differential suite cannot pin by
itself:

- **the object-dtype overflow fallback** — weighted counts that
  straddle 2^63 must silently switch the numpy DP from ``int64`` to
  object dtype (exact Python ints) and still match the reference
  bitwise, value *and* type.  A hypothesis property drives random
  weighted automata across the boundary; a pinned regression freezes
  one straddling workload and asserts the
  ``kernels.vectorized.object_fallback`` counter actually fired.
- **graceful no-numpy degradation** — with numpy absent (simulated by
  monkeypatching :data:`repro.core.vectorized._np` to ``None``),
  ``resolve_backend('vectorized')`` raises a contextual error naming
  the ``[vectorized]`` extra, while the engine and the serve daemon
  auto-fall back to ``'optimized'`` and count the degradation as
  ``kernels.vectorized.unavailable``.  The other two backends stay
  untouched, so tier-1 behaviour is numpy-independent.
"""

from __future__ import annotations

import random
from fractions import Fraction

import pytest
from hypothesis import given, settings
from hypothesis import strategies as st

import repro.core.vectorized as vectorized
from repro.automata.nfta_counting import count_nfta_exact
from repro.core.estimator import PQEEngine
from repro.core.kernels import (
    clear_kernel_caches,
    fallback_backend,
    resolve_backend,
    vectorized_available,
)
from repro.errors import ReproError
from repro.obs import EvaluationTelemetry, telemetry_scope
from repro.queries.builders import path_query
from repro.workloads.instances import (
    random_instance_for_query,
    random_probabilities,
)

from test_nfta_counting import _random_nfta

needs_numpy = pytest.mark.skipif(
    not vectorized_available(), reason="numpy not installed"
)


# ---------------------------------------------------------------------------
# overflow: counts straddling 2^63 take the object-dtype fallback


@needs_numpy
@given(seed=st.integers(min_value=0, max_value=100_000))
@settings(max_examples=20, deadline=None)
def test_straddling_counts_match_reference_bitwise(seed):
    """Mixed-sign weights near 2^44 push intermediate products far past
    2^63 within a few layers; the vectorized DP must cross into object
    mode and stay bitwise-equal (value and type) to the reference."""
    nfta = _random_nfta(seed, states=4)
    symbols = sorted(nfta.alphabet, key=str)
    table = {
        symbol: ((-1) ** i) * ((1 << 44) + 977 * i + seed)
        for i, symbol in enumerate(symbols)
    }
    for size in range(1, 7):
        expected = count_nfta_exact(
            nfta, size, weight_of=table.get, backend="reference"
        )
        actual = count_nfta_exact(
            nfta, size, weight_of=table.get, backend="vectorized"
        )
        assert actual == expected
        assert type(actual) is type(expected)


@needs_numpy
def test_pinned_straddling_regression():
    """One frozen straddling workload: a weighted PQE reduction whose
    weights are scaled by 2^40, forcing the int64 → object switch.  The
    count, its type, and the fallback counter are all pinned."""
    query = path_query(2)
    instance = random_instance_for_query(
        query, domain_size=2, facts_per_relation=3, seed=7
    )
    pdb = random_probabilities(instance, seed=7, max_denominator=4)
    from repro.core.pqe_estimate import build_pqe_reduction

    reduction = build_pqe_reduction(query, pdb, weighted=True)

    def scaled(symbol):
        return reduction.weight_of(symbol) * (1 << 40)

    expected = count_nfta_exact(
        reduction.nfta, reduction.tree_size, weight_of=scaled,
        backend="reference",
    )
    clear_kernel_caches()
    telemetry = EvaluationTelemetry()
    with telemetry_scope(telemetry):
        actual = count_nfta_exact(
            reduction.nfta, reduction.tree_size, weight_of=scaled,
            backend="vectorized",
        )
    assert actual == expected
    assert type(actual) is type(expected) is int
    assert actual.bit_length() > 63  # genuinely straddles int64
    assert telemetry.counter("kernels.vectorized.object_fallback") >= 1


@needs_numpy
def test_fraction_weights_use_object_mode_from_the_start():
    nfta = _random_nfta(3, states=4)
    symbols = sorted(nfta.alphabet, key=str)
    table = {
        symbol: Fraction(2 * i + 1, 7) for i, symbol in enumerate(symbols)
    }
    for size in range(1, 6):
        expected = count_nfta_exact(
            nfta, size, weight_of=table.get, backend="reference"
        )
        actual = count_nfta_exact(
            nfta, size, weight_of=table.get, backend="vectorized"
        )
        assert actual == expected
        assert type(actual) is type(expected)


# ---------------------------------------------------------------------------
# degradation: the backend without numpy


def _without_numpy(monkeypatch):
    monkeypatch.setattr(vectorized, "_np", None)


def test_resolve_backend_raises_contextually_without_numpy(monkeypatch):
    _without_numpy(monkeypatch)
    with pytest.raises(ReproError) as failure:
        resolve_backend("vectorized")
    message = str(failure.value)
    assert "numpy" in message
    assert "[vectorized]" in message
    assert "optimized" in message  # points at the working alternative


def test_fallback_backend_degrades_with_counter(monkeypatch):
    _without_numpy(monkeypatch)
    telemetry = EvaluationTelemetry()
    with telemetry_scope(telemetry):
        assert fallback_backend("vectorized") == "optimized"
    assert telemetry.counter("kernels.vectorized.unavailable") == 1


def test_other_backends_are_numpy_independent(monkeypatch):
    _without_numpy(monkeypatch)
    assert resolve_backend("optimized") == "optimized"
    assert resolve_backend("reference") == "reference"
    assert resolve_backend(None) == "optimized"
    assert fallback_backend("optimized") == "optimized"


def test_engine_autofallback_without_numpy(monkeypatch, q2, tiny_pdb):
    _without_numpy(monkeypatch)
    telemetry = EvaluationTelemetry()
    with telemetry_scope(telemetry):
        engine = PQEEngine(seed=11, kernel_backend="vectorized")
    assert engine.kernel_backend == "optimized"
    assert telemetry.counter("kernels.vectorized.unavailable") == 1
    # …and the degraded engine answers exactly like a native one.
    native = PQEEngine(seed=11, kernel_backend="optimized")
    assert engine.probability(q2, tiny_pdb) == native.probability(
        q2, tiny_pdb
    )


def test_serve_autofallback_without_numpy(monkeypatch, tiny_pdb):
    _without_numpy(monkeypatch)
    from repro.serve import PQEServer, ServerConfig

    server = PQEServer(
        tiny_pdb, ServerConfig(kernel_backend="vectorized")
    )
    assert server.engine.kernel_backend == "optimized"
    stats = server.stats()
    assert stats["requests"]["kernels.vectorized.unavailable"] == 1
    status, body = server.handle({"query": "Q :- R(x, y), S(y, z)"})
    assert status == 200 and body["ok"]


@needs_numpy
def test_engine_and_serve_keep_vectorized_with_numpy(tiny_pdb):
    from repro.serve import PQEServer, ServerConfig

    assert resolve_backend("vectorized") == "vectorized"
    assert fallback_backend("vectorized") == "vectorized"
    engine = PQEEngine(kernel_backend="vectorized")
    assert engine.kernel_backend == "vectorized"
    server = PQEServer(
        tiny_pdb, ServerConfig(kernel_backend="vectorized")
    )
    assert server.engine.kernel_backend == "vectorized"
    assert "kernels.vectorized.unavailable" not in server.stats()[
        "requests"
    ]


def test_unknown_backend_message_lists_choices():
    with pytest.raises(ReproError) as failure:
        resolve_backend("simd")
    assert "simd" in str(failure.value)


# ---------------------------------------------------------------------------
# randomized cross-check at moderate weights (no overflow): the int64
# path itself, not just the object fallback


@needs_numpy
def test_random_small_weight_parity():
    rng = random.Random(31)
    for trial in range(8):
        nfta = _random_nfta(200 + trial, states=4)
        symbols = sorted(nfta.alphabet, key=str)
        table = {
            symbol: rng.randint(1, 9) for symbol in symbols
        }
        size = rng.randint(1, 7)
        expected = count_nfta_exact(
            nfta, size, weight_of=table.get, backend="reference"
        )
        actual = count_nfta_exact(
            nfta, size, weight_of=table.get, backend="vectorized"
        )
        assert actual == expected
        assert type(actual) is type(expected)
