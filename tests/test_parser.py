"""Unit tests for the textual query parser."""

import pytest

from repro.errors import ParseError
from repro.queries.atoms import make_atom
from repro.queries.cq import ConjunctiveQuery
from repro.queries.parser import parse_query


class TestAcceptedSyntax:
    def test_basic_body(self):
        q = parse_query("R(x,y), S(y,z)")
        assert q == ConjunctiveQuery(
            [make_atom("R", "x", "y"), make_atom("S", "y", "z")]
        )

    def test_rule_head(self):
        assert parse_query("Q :- R(x,y)") == parse_query("R(x,y)")

    def test_rule_head_with_parens(self):
        assert parse_query("Q() :- R(x,y)") == parse_query("R(x,y)")

    def test_whitespace_insensitive(self):
        assert parse_query("  R( x ,y )  ,S(y,  z)") == parse_query(
            "R(x,y), S(y,z)"
        )

    def test_single_atom(self):
        q = parse_query("Edge(u, v)")
        assert len(q) == 1
        assert q.atoms[0].relation == "Edge"

    def test_unary_atom(self):
        q = parse_query("U(x)")
        assert q.atoms[0].arity == 1

    def test_high_arity(self):
        q = parse_query("T(a, b, c, d, e)")
        assert q.atoms[0].arity == 5

    def test_repeated_variable_in_atom(self):
        q = parse_query("R(x, x)")
        assert [v.name for v in q.atoms[0]] == ["x", "x"]

    def test_identifier_characters(self):
        q = parse_query("R_1(x', y2)")
        assert q.atoms[0].relation == "R_1"
        assert [v.name for v in q.atoms[0]] == ["x'", "y2"]

    def test_self_join_parses(self):
        q = parse_query("R(x,y), R(y,z)")
        assert not q.is_self_join_free

    def test_head_name_same_as_relation(self):
        # 'R' head followed by body starting with R(...) atom.
        q = parse_query("R :- R(x, y)")
        assert len(q) == 1


class TestRejectedSyntax:
    @pytest.mark.parametrize(
        "text",
        [
            "",
            "   ",
            "R(x,y",          # unclosed paren
            "R(x,y))",        # trailing junk
            "R(,y)",          # missing arg
            "R()",            # no args at all
            "R(x,y) S(y,z)",  # missing comma
            "R(x,y),",        # trailing comma
            ",R(x,y)",        # leading comma
            "R(x,1y)!!",      # illegal character
            ":- R(x,y) :-",   # stray rule marker
            "R",              # bare identifier
        ],
    )
    def test_raises(self, text):
        with pytest.raises(ParseError):
            parse_query(text)


class TestRoundTrip:
    @pytest.mark.parametrize(
        "text",
        [
            "R(x, y)",
            "R1(x1, x2), R2(x2, x3), R3(x3, x4)",
            "U(c), R1(c, y1), R2(c, y2)",
            "T(a, b, c), S(b, c, d)",
        ],
    )
    def test_parse_str_parse_fixpoint(self, text):
        q = parse_query(text)
        assert parse_query(str(q)) == q
