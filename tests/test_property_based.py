"""Property-based (hypothesis) tests for the parser, the sampler, and
the kernel-optimization layer.

Three invariant families the example-based suites cannot exhaustively
cover:

- **Parser round-trip**: ``parse_query(str(q)) == q`` for arbitrary
  conjunctive queries, so the textual form is a faithful serialisation
  (the CLI batch format depends on this).
- **Tree decoding**: every tree sampled from the Proposition 1 /
  Theorem 1 automata decodes — via ``_decode_tree`` — into a
  subinstance that (a) only contains facts of the input database,
  (b) satisfies the query, and (c) never trips the duplicate-fact
  invariant that guards the reduction.
- **Automaton optimization**: over random NFTAs seeded with dead
  states, unreachable states, and duplicate transitions,
  :func:`repro.automata.optimize.optimize_nfta` must preserve
  ``|L_k(T)|`` for every k ≤ 6, and the dense layer DP must equal the
  reference DP bit for bit (see also ``test_kernel_differential``).
"""

import random

from hypothesis import given, settings
from hypothesis import strategies as st

from repro.automata.nfta import NFTA
from repro.automata.nfta_counting import count_nfta_exact
from repro.automata.optimize import optimize_nfta
from repro.core.sampling import (
    sample_posterior_worlds,
    sample_satisfying_subinstances,
)
from repro.db.fact import Fact
from repro.db.instance import DatabaseInstance
from repro.db.probabilistic import ProbabilisticDatabase
from repro.db.semantics import satisfies
from repro.queries.atoms import Atom, Variable
from repro.queries.builders import path_query, star_query
from repro.queries.cq import ConjunctiveQuery
from repro.queries.parser import parse_query

# ---------------------------------------------------------------------
# Parser round-trip
# ---------------------------------------------------------------------

_IDENT_HEAD = "abcdefghXYZ_"
_IDENT_TAIL = _IDENT_HEAD + "0123456789'"


def _random_identifier(rng: random.Random) -> str:
    head = rng.choice(_IDENT_HEAD)
    tail = "".join(
        rng.choice(_IDENT_TAIL) for _ in range(rng.randint(0, 4))
    )
    return head + tail


def _random_query(rng: random.Random) -> ConjunctiveQuery:
    variables = [
        Variable(name)
        for name in {_random_identifier(rng) for _ in range(4)}
    ]
    atoms = []
    for index in range(rng.randint(1, 5)):
        arity = rng.randint(1, 4)
        atoms.append(
            Atom(
                f"{_random_identifier(rng)}_{index}",
                tuple(rng.choice(variables) for _ in range(arity)),
            )
        )
    return ConjunctiveQuery(atoms)


@given(st.integers(min_value=0, max_value=100_000))
@settings(max_examples=100, deadline=None)
def test_parser_round_trips_str(seed):
    rng = random.Random(seed)
    query = _random_query(rng)
    assert parse_query(str(query)) == query


@given(st.integers(min_value=0, max_value=100_000))
@settings(max_examples=50, deadline=None)
def test_parser_round_trip_survives_whitespace_and_head(seed):
    rng = random.Random(seed)
    query = _random_query(rng)
    text = str(query)
    # The head prefix is optional and whitespace is free.
    body = text.split(":-", 1)[1]
    assert parse_query(body) == query
    assert parse_query(body.replace(" ", "")) == query
    assert parse_query("  " + text.replace(", ", " ,\n ")) == query


def test_builder_docstring_round_trips():
    for query in (path_query(4), star_query(3)):
        assert parse_query(str(query)) == query


# ---------------------------------------------------------------------
# Sampler / _decode_tree invariants
# ---------------------------------------------------------------------

def _random_shape(rng: random.Random) -> ConjunctiveQuery:
    if rng.random() < 0.5:
        return path_query(rng.randint(1, 3))
    return star_query(rng.randint(1, 3))


def _random_instance_with_witness(
    query: ConjunctiveQuery, rng: random.Random
) -> DatabaseInstance:
    constants = ["a", "b", "c"]
    facts: set[Fact] = set()
    for atom in query.atoms:
        for _ in range(rng.randint(0, 2)):
            facts.add(
                Fact(
                    atom.relation,
                    tuple(rng.choice(constants) for _ in range(atom.arity)),
                )
            )
    # Inject one canonical witness so the sampled language is nonempty.
    assignment = {v: rng.choice(constants) for v in query.variables}
    for atom in query.atoms:
        facts.add(
            Fact(atom.relation, tuple(assignment[v] for v in atom.args))
        )
    return DatabaseInstance(sorted(facts, key=Fact.sort_key))


@given(st.integers(min_value=0, max_value=100_000))
@settings(max_examples=25, deadline=None)
def test_sampled_subinstances_satisfy_the_query(seed):
    rng = random.Random(seed)
    query = _random_shape(rng)
    instance = _random_instance_with_witness(query, rng)

    # _decode_tree raising (duplicate fact in a tree) would fail here.
    worlds = sample_satisfying_subinstances(
        query, instance, k=8, seed=seed
    )
    universe = set(instance)
    for world in worlds:
        assert world <= universe
        assert satisfies(DatabaseInstance(world), query)


@given(st.integers(min_value=0, max_value=100_000))
@settings(max_examples=15, deadline=None)
def test_posterior_worlds_satisfy_the_query(seed):
    rng = random.Random(seed)
    query = _random_shape(rng)
    instance = _random_instance_with_witness(query, rng)
    probabilities = ["1/2", "2/3", "3/4", "9/10"]
    pdb = ProbabilisticDatabase(
        {fact: rng.choice(probabilities) for fact in instance}
    )

    worlds = sample_posterior_worlds(query, pdb, k=6, seed=seed)
    universe = set(instance)
    for world in worlds:
        assert world <= universe
        assert satisfies(DatabaseInstance(world), query)


@given(st.integers(min_value=0, max_value=100_000))
@settings(max_examples=10, deadline=None)
def test_sampling_is_deterministic_under_a_seed(seed):
    rng = random.Random(seed)
    query = _random_shape(rng)
    instance = _random_instance_with_witness(query, rng)
    first = sample_satisfying_subinstances(query, instance, k=5, seed=seed)
    second = sample_satisfying_subinstances(query, instance, k=5, seed=seed)
    assert first == second


# ---------------------------------------------------------------------
# Automaton optimization invariants
# ---------------------------------------------------------------------

def _messy_random_nfta(rng: random.Random) -> NFTA:
    """A random NFTA deliberately salted with the structures the
    optimizer must handle: duplicate transitions, dead (unproductive)
    states, and unreachable states."""
    num_states = rng.randint(2, 5)
    names = [f"s{i}" for i in range(num_states)]
    transitions = []
    for source in names:
        for symbol in "ab":
            if rng.random() < 0.55:
                transitions.append((source, symbol, ()))
            for arity in (1, 2, 3):
                for _ in range(rng.randint(0, 2 if arity < 3 else 1)):
                    children = tuple(
                        rng.choice(names) for _ in range(arity)
                    )
                    transitions.append((source, symbol, children))
    # Duplicate a few existing transitions verbatim.
    for _ in range(rng.randint(0, 3)):
        if transitions:
            transitions.append(rng.choice(transitions))
    # A dead state: consumes itself, never derives a finite tree.
    transitions.append(("dead", "a", ("dead",)))
    if rng.random() < 0.5:
        transitions.append((names[0], "a", ("dead",)))
    # An unreachable state with a perfectly fine derivation of its own.
    transitions.append(("island", "b", ()))
    transitions.append(("island", "a", ("island",)))
    return NFTA(transitions, initial=names[0])


@given(st.integers(min_value=0, max_value=100_000))
@settings(max_examples=40, deadline=None)
def test_pruning_preserves_language_counts(seed):
    rng = random.Random(seed)
    nfta = _messy_random_nfta(rng)
    pruned = optimize_nfta(nfta).as_nfta()
    for k in range(1, 7):
        assert count_nfta_exact(
            pruned, k, backend="reference"
        ) == count_nfta_exact(nfta, k, backend="reference")


@given(st.integers(min_value=0, max_value=100_000))
@settings(max_examples=40, deadline=None)
def test_dense_dp_equals_reference_dp(seed):
    rng = random.Random(seed)
    nfta = _messy_random_nfta(rng)
    weights = {"a": rng.randint(0, 4), "b": rng.randint(1, 5)}
    for k in range(1, 7):
        assert count_nfta_exact(
            nfta, k, backend="optimized"
        ) == count_nfta_exact(nfta, k, backend="reference")
        assert count_nfta_exact(
            nfta, k, weight_of=weights.get, backend="optimized"
        ) == count_nfta_exact(
            nfta, k, weight_of=weights.get, backend="reference"
        )


@given(st.integers(min_value=0, max_value=100_000))
@settings(max_examples=40, deadline=None)
def test_optimization_report_is_consistent(seed):
    rng = random.Random(seed)
    nfta = _messy_random_nfta(rng)
    dense = optimize_nfta(nfta)
    report = dense.report
    assert report.states_after == dense.num_states <= report.states_before
    assert report.transitions_after == len(dense.transitions)
    assert report.states_pruned >= 1      # 'dead' and 'island' exist
    assert report.transitions_pruned >= 2
    assert report.transitions_deduped >= 0
    # The initial state survives (or the automaton is empty) and is
    # always interned as bit 0.
    if dense.num_states:
        assert dense.states[0] == nfta.initial
        assert dense.initial_bit == 1


# ---------------------------------------------------------------------
# Lifted fast path: safe plans against WMC, hierarchy against brute force
# ---------------------------------------------------------------------

def _recursive_hierarchy_check(atoms) -> bool:
    """Independent hierarchy decision via the recursive root-variable
    characterisation: a query is hierarchical iff every connected
    component (atoms linked by shared variables) either is ground or
    has a *root* — a variable in all of the component's atoms — whose
    removal leaves a hierarchical residual.  Exponential-ish and naive
    on purpose: it shares no code with ``is_hierarchical``'s pairwise
    atom-set comparison.
    """
    remaining = list(atoms)
    while remaining:
        component = [remaining.pop()]
        grew = True
        while grew:
            grew = False
            for atom in list(remaining):
                if any(
                    set(atom[1]) & set(member[1])
                    for member in component
                ):
                    component.append(atom)
                    remaining.remove(atom)
                    grew = True
        variables = set().union(*(set(a[1]) for a in component))
        if not variables:
            continue
        roots = [
            v for v in variables
            if all(v in a[1] for a in component)
        ]
        if not any(
            _recursive_hierarchy_check(
                [
                    (rel, tuple(x for x in args if x != root))
                    for rel, args in component
                ]
            )
            for root in roots
        ):
            return False
    return True


def _random_sjf_query(rng: random.Random) -> ConjunctiveQuery:
    variables = [Variable(f"x{i}") for i in range(rng.randint(1, 4))]
    atoms = []
    for index in range(rng.randint(1, 4)):
        arity = rng.randint(1, 3)
        atoms.append(
            Atom(
                f"P{index}",
                tuple(rng.choice(variables) for _ in range(arity)),
            )
        )
    return ConjunctiveQuery(atoms)


@given(st.integers(min_value=0, max_value=100_000))
@settings(max_examples=100, deadline=None)
def test_is_hierarchical_agrees_with_brute_force(seed):
    from repro.queries.properties import is_hierarchical

    rng = random.Random(seed)
    query = _random_sjf_query(rng)
    shape = [
        (atom.relation, tuple(v.name for v in atom.args))
        for atom in query.atoms
    ]
    assert is_hierarchical(query) == _recursive_hierarchy_check(shape), (
        str(query)
    )


@given(st.integers(min_value=0, max_value=100_000))
@settings(max_examples=40, deadline=None)
def test_safe_plan_equals_exact_wmc_on_hierarchical_queries(seed):
    from fractions import Fraction

    from repro.core.exact import exact_probability
    from repro.queries.properties import is_hierarchical
    from repro.queries.safe_plan import safe_plan_probability
    from repro.workloads import (
        random_hierarchical_query,
        random_instance_for_query,
        random_probabilities,
    )

    query = random_hierarchical_query(seed)
    assert query.is_self_join_free and is_hierarchical(query)
    instance = random_instance_for_query(
        query, domain_size=3, facts_per_relation=3, seed=seed
    )
    pdb = random_probabilities(
        instance, seed=seed, max_denominator=6, include_extremes=True
    )
    via_plan = safe_plan_probability(query, pdb)
    via_wmc = exact_probability(query, pdb, method="lineage")
    assert isinstance(via_plan, Fraction)
    assert via_plan == via_wmc, str(query)


@given(st.integers(min_value=0, max_value=100_000))
@settings(max_examples=40, deadline=None)
def test_lifted_route_equals_safe_plan_on_hierarchical_queries(seed):
    from repro.queries.lifted import classify_query, lifted_probability
    from repro.queries.safe_plan import safe_plan_probability
    from repro.workloads import (
        random_hierarchical_query,
        random_instance_for_query,
        random_probabilities,
    )

    query = random_hierarchical_query(seed)
    assert classify_query(query).safe
    instance = random_instance_for_query(
        query, domain_size=3, facts_per_relation=3, seed=seed
    )
    pdb = random_probabilities(instance, seed=seed, max_denominator=6)
    assert lifted_probability(query, pdb) == safe_plan_probability(
        query, pdb
    )


# ---------------------------------------------------------------------
# Probabilistic-graph RPQs (repro.graphs)
# ---------------------------------------------------------------------

import re
from fractions import Fraction

from repro.automata.nfa import NFA
from repro.graphs import (
    Edge,
    ProbabilisticGraph,
    RPQQuery,
    build_rpq_nfa,
    rpq_holds,
    rpq_probability_estimate,
)
from repro.graphs.product import Literal, relevant_edges
from repro.graphs.rpq import RPQExpression, parse_rpq, rpq_to_nfa

_RPQ_ALPHABET = ("a", "b", "c")


def _random_rpq_text(rng: random.Random, depth: int = 3) -> str:
    roll = rng.random()
    if depth == 0 or roll < 0.4:
        return rng.choice(_RPQ_ALPHABET)
    if roll < 0.6:
        left = _random_rpq_text(rng, depth - 1)
        right = _random_rpq_text(rng, depth - 1)
        return f"({left}|{right})"
    if roll < 0.8:
        left = _random_rpq_text(rng, depth - 1)
        right = _random_rpq_text(rng, depth - 1)
        return f"{left} {right}"
    return f"({_random_rpq_text(rng, depth - 1)}){rng.choice('*+?')}"


def _all_words(max_length: int):
    frontier = [()]
    for word in frontier:
        yield word
    for _ in range(max_length):
        frontier = [
            word + (symbol,)
            for word in frontier
            for symbol in _RPQ_ALPHABET
        ]
        yield from frontier


def _random_dag(rng: random.Random) -> ProbabilisticGraph:
    nodes = [f"v{i}" for i in range(rng.randint(3, 5))]
    probabilities = {}
    for i in range(len(nodes)):
        for j in range(i + 1, len(nodes)):
            if rng.random() < 0.5:
                label = rng.choice(_RPQ_ALPHABET)
                probabilities[Edge(nodes[i], label, nodes[j])] = Fraction(
                    rng.randint(1, 5), 6
                )
    return ProbabilisticGraph(probabilities, nodes=nodes)


@given(st.integers(min_value=0, max_value=100_000))
@settings(max_examples=60, deadline=None)
def test_glushkov_nfa_agrees_with_reference_matcher(seed):
    """L(Glushkov NFA) == L(regex), checked word by word.

    The reference matcher works on span sets straight off the AST — it
    shares no code with the position-automaton construction, so
    agreement over every word up to length 4 is a genuine differential
    check of both.
    """
    rng = random.Random(seed)
    expression = RPQExpression(_random_rpq_text(rng))
    nfa = expression.nfa
    for word in _all_words(4):
        assert nfa.accepts(word) == expression.matches(word), (
            expression.canonical, word
        )


@given(st.integers(min_value=0, max_value=100_000))
@settings(max_examples=40, deadline=None)
def test_product_accepts_exactly_the_satisfying_subsets(seed):
    """Layered-product language soundness: the reduction's NFA accepts
    a literal string iff the corresponding edge subset satisfies the
    RPQ (per the automaton-free product-BFS oracle)."""
    rng = random.Random(seed)
    graph = _random_dag(rng)
    nodes = sorted(graph.nodes)
    query = RPQQuery(
        _random_rpq_text(rng), rng.choice(nodes), rng.choice(nodes)
    )
    reduction = build_rpq_nfa(graph, query)
    edges = reduction.edges
    if reduction.trivial is not None:
        world = list(relevant_edges(graph, query))
        assert rpq_holds(world, query) == (reduction.trivial == 1)
        return
    for mask in range(1 << len(edges)):
        subset = [edges[i] for i in range(len(edges)) if mask >> i & 1]
        word = tuple(
            Literal(edge, bool(mask >> i & 1))
            for i, edge in enumerate(edges)
        )
        assert reduction.nfa.accepts(word) == rpq_holds(subset, query), (
            query, subset
        )


@given(st.integers(min_value=0, max_value=100_000))
@settings(max_examples=40, deadline=None)
def test_rpq_probability_is_invariant_under_label_renaming(seed):
    """Renaming edge labels by a bijection (applied to the graph and
    the regex alike) cannot change the probability — bitwise, since
    both sides take the exact DP route."""
    rng = random.Random(seed)
    graph = _random_dag(rng)
    nodes = sorted(graph.nodes)
    query = RPQQuery(
        _random_rpq_text(rng), rng.choice(nodes), rng.choice(nodes)
    )
    renaming = dict(zip(_RPQ_ALPHABET, ("xx", "yy", "zz")))
    renamed_graph = ProbabilisticGraph(
        {
            Edge(e.source, renaming[e.label], e.target): p
            for e, p in graph.probabilities.items()
        },
        nodes=graph.nodes,
    )
    renamed_text = " ".join(
        renaming.get(token, token)
        for token in re.findall(
            r"[A-Za-z_][A-Za-z0-9_]*|[()|*+?]", query.rpq.canonical
        )
    )
    renamed_query = RPQQuery(renamed_text, query.source, query.target)
    original = rpq_probability_estimate(graph, query, method="exact")
    renamed = rpq_probability_estimate(
        renamed_graph, renamed_query, method="exact"
    )
    assert original.rational == renamed.rational


@given(st.integers(min_value=0, max_value=100_000))
@settings(max_examples=40, deadline=None)
def test_nfa_trimming_preserves_counts_bitwise(seed):
    """Grafting unreachable and dead states onto a Glushkov NFA and
    trimming must give back the original counts exactly, at every
    length — the RPQ reduction relies on ``trimmed()`` being a pure
    optimisation."""
    rng = random.Random(seed)
    nfa = rpq_to_nfa(parse_rpq(_random_rpq_text(rng)))
    transitions = list(nfa.transitions())
    states = list(nfa.states) or [0]
    # Unreachable component: cycles among fresh states, plus an edge
    # into a live state (still unreachable from the initial set).
    for k in range(rng.randint(1, 3)):
        transitions.append((f"junk{k}", rng.choice(_RPQ_ALPHABET),
                            f"junk{k + 1}"))
        transitions.append((f"junk{k}", rng.choice(_RPQ_ALPHABET),
                            rng.choice(states)))
    # Dead component: reachable from a live state but never accepting.
    transitions.append((rng.choice(states), rng.choice(_RPQ_ALPHABET),
                        "dead0"))
    transitions.append(("dead0", rng.choice(_RPQ_ALPHABET), "dead0"))
    bloated = NFA(
        transitions, initial=nfa.initial, accepting=nfa.accepting
    )
    slim = bloated.trimmed()
    assert slim.states <= bloated.states
    for length in range(7):
        assert (
            slim.count_exact(length)
            == nfa.count_exact(length)
            == bloated.count_exact(length)
        )
