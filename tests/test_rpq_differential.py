"""Three-oracle differential tier for probabilistic-graph RPQs.

Runs under ``-m rpq`` in its own CI job.  For every corpus entry the
same probability is computed three independent ways:

1. **Brute force** (:func:`~repro.graphs.rpq_brute_force`): exact
   rational sum over all ``2^m`` relevant-edge subsets, using only the
   product-BFS reachability oracle — no automata, no layering.
2. **Exact product DP** (``method='exact'``): the layered reduction
   counted by :meth:`~repro.automata.nfa.NFA.count_exact` in integer
   arithmetic.  Must equal the brute force **bitwise** as a Fraction.
3. **FPRAS** (``method='fpras'`` with ``exact_set_cap=0`` so the
   counter genuinely samples): must land within ε of the truth under
   median amplification, at fixed seeds.

Worker invariance (max_workers 1 vs 4 bitwise) and fixed-seed
reproducibility close the loop, and ``tests/golden/rpq.json`` pins the
exact answers of the 8 :func:`~repro.workloads.rpq_workloads` entries —
refresh with ``--update-golden`` and review the diff.
"""

from __future__ import annotations

import json
import pathlib
from fractions import Fraction

import pytest

from repro.core.estimator import PQEEngine
from repro.core.parallel import BatchItem
from repro.graphs import (
    Edge,
    ProbabilisticGraph,
    RPQQuery,
    relevant_edges,
    repetitions_for_delta,
    rpq_brute_force,
    rpq_probability_estimate,
)
from repro.workloads import rpq_workloads

pytestmark = pytest.mark.rpq

GOLDEN_PATH = pathlib.Path(__file__).parent / "golden" / "rpq.json"

#: Brute force enumerates 2^m subsets; every corpus entry stays under
#: this so the ground truth is instant.
MAX_RELEVANT_EDGES = 12

EPSILON = 0.3


def _handcrafted_cases():
    """Small adversarial shapes the generators don't produce."""
    diamond = ProbabilisticGraph({
        Edge("s", "a", "u"): "1/2",
        Edge("s", "a", "v"): "1/3",
        Edge("u", "b", "t"): "2/3",
        Edge("v", "b", "t"): "3/4",
        Edge("u", "c", "v"): "1/2",
    })
    chain = ProbabilisticGraph({
        Edge(f"c{i}", "a", f"c{i + 1}"): Fraction(1, 2) for i in range(8)
    })
    skip = ProbabilisticGraph({
        Edge("x0", "a", "x1"): "1/2",
        Edge("x1", "a", "x2"): "1/2",
        Edge("x0", "b", "x2"): "1/3",
        Edge("x2", "a", "x3"): "2/3",
        Edge("x1", "b", "x3"): "1/4",
    })
    lonely = ProbabilisticGraph(
        {Edge("p", "a", "q"): "1/2"}, nodes=["iso"]
    )
    return [
        ("diamond-ab", diamond, RPQQuery("a b", "s", "t")),
        ("diamond-chord", diamond, RPQQuery("a (c b | b)", "s", "t")),
        ("chain-star", chain, RPQQuery("a*", "c0", "c8")),
        ("chain-exact8", chain, RPQQuery("a a a a a a a a", "c0", "c8")),
        ("skip-mixed", skip, RPQQuery("(a|b)+", "x0", "x3")),
        ("skip-strict", skip, RPQQuery("a b", "x0", "x3")),
        ("nullable-self", lonely, RPQQuery("a*", "iso", "iso")),
        ("dead-label", lonely, RPQQuery("zz+", "p", "q")),
    ]


def _corpus():
    return _handcrafted_cases() + list(rpq_workloads())


CORPUS = _corpus()
CORPUS_IDS = [name for name, _, _ in CORPUS]


def test_corpus_is_brute_forceable():
    for name, graph, query in CORPUS:
        m = len(relevant_edges(graph, query))
        assert m <= MAX_RELEVANT_EDGES, (name, m)


@pytest.mark.parametrize(
    "name,graph,query", CORPUS, ids=CORPUS_IDS
)
def test_exact_dp_equals_brute_force_bitwise(name, graph, query):
    truth = rpq_brute_force(graph, query)
    estimate = rpq_probability_estimate(graph, query, method="exact")
    assert estimate.exact
    assert estimate.rational == truth, (
        f"{name}: DP gave {estimate.rational}, brute force {truth}"
    )


@pytest.mark.parametrize(
    "name,graph,query", CORPUS, ids=CORPUS_IDS
)
def test_enumerate_route_equals_brute_force(name, graph, query):
    truth = rpq_brute_force(graph, query)
    estimate = rpq_probability_estimate(graph, query, method="enumerate")
    assert estimate.exact and estimate.rational == truth


@pytest.mark.parametrize(
    "name,graph,query", CORPUS, ids=CORPUS_IDS
)
def test_fpras_meets_epsilon_at_fixed_seed(name, graph, query):
    truth = float(rpq_brute_force(graph, query))
    estimate = rpq_probability_estimate(
        graph, query, method="fpras", epsilon=EPSILON, seed=424242,
        exact_set_cap=0,
        repetitions=repetitions_for_delta(0.05),
    )
    assert 0.0 <= estimate.estimate <= 1.0
    assert abs(estimate.estimate - truth) <= EPSILON * truth + 1e-12, (
        f"{name}: fpras gave {estimate.estimate}, truth {truth}"
    )


def test_fpras_really_samples_on_nontrivial_entries():
    sampled = 0
    for _name, graph, query in CORPUS:
        estimate = rpq_probability_estimate(
            graph, query, method="fpras", epsilon=EPSILON, seed=7,
            exact_set_cap=0,
        )
        if estimate.samples_used > 0:
            sampled += 1
    assert sampled >= len(CORPUS) // 2


def test_monte_carlo_agrees_additively():
    for name, graph, query in CORPUS:
        truth = float(rpq_brute_force(graph, query))
        estimate = rpq_probability_estimate(
            graph, query, method="monte-carlo", seed=99, samples=4000
        )
        assert abs(estimate.estimate - truth) <= 0.05, (name, truth)


# ---------------------------------------------------------------------
# Batch worker invariance and seed reproducibility
# ---------------------------------------------------------------------

def _batch_items():
    return [
        BatchItem(query, graph, task="rpq", method=method)
        for _name, graph, query in CORPUS
        for method in ("auto", "fpras")
    ]


def test_batch_results_are_worker_invariant():
    items = _batch_items()
    runs = [
        PQEEngine(seed=31, epsilon=EPSILON, exact_set_cap=0)
        .evaluate_batch(items, seed=31, max_workers=workers)
        for workers in (1, 4)
    ]
    assert runs[0].answers == runs[1].answers


def test_fixed_seed_reproducibility():
    items = _batch_items()

    def run():
        return PQEEngine(
            seed=17, epsilon=EPSILON, exact_set_cap=0
        ).evaluate_batch(items, seed=17, max_workers=2).answers

    assert run() == run()


# ---------------------------------------------------------------------
# Golden corpus
# ---------------------------------------------------------------------

def _current_golden() -> dict:
    current = {}
    for name, graph, query in rpq_workloads():
        estimate = rpq_probability_estimate(graph, query, method="exact")
        assert estimate.exact and estimate.rational is not None
        current[name] = {
            "query": str(query),
            "edges": len(graph),
            "relevant_edges": len(relevant_edges(graph, query)),
            "graph_token": graph.cache_token,
            "probability": str(estimate.rational),
        }
    return current


def test_golden_rpq_corpus_matches(update_golden):
    current = _current_golden()
    if update_golden:
        GOLDEN_PATH.parent.mkdir(exist_ok=True)
        GOLDEN_PATH.write_text(
            json.dumps(current, indent=2, sort_keys=True) + "\n",
            encoding="utf-8",
        )
    assert GOLDEN_PATH.exists(), (
        "tests/golden/rpq.json is missing; generate it with "
        "pytest tests/test_rpq_differential.py --update-golden"
    )
    frozen = json.loads(GOLDEN_PATH.read_text(encoding="utf-8"))
    assert current == frozen, (
        "RPQ answers drifted from tests/golden/rpq.json; if the change "
        "is intentional, refresh with --update-golden and review the "
        "diff"
    )


def test_golden_values_cross_checked_against_brute_force():
    frozen = json.loads(GOLDEN_PATH.read_text(encoding="utf-8"))
    for name, graph, query in rpq_workloads():
        assert Fraction(frozen[name]["probability"]) == rpq_brute_force(
            graph, query
        ), name
