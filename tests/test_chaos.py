"""Chaos tier (``-m chaos``): kill workers and corrupt durable state.

The acceptance scenarios for the crash-safety layer:

- a 16-item batch whose worker is ``SIGKILL``ed mid-run, then resumed
  from its journal, yields a :class:`BatchResult` bitwise-identical —
  answers, seeds, merged replay-stable deterministic counters — to an
  uninterrupted run, at workers 1 and 4;
- a bit-flipped disk-cache record and a torn journal tail are
  quarantined with a warning: never an exception, never a wrong
  probability.

When ``CHAOS_ARTIFACT_DIR`` is set (the CI chaos job), the recovered
journal from the CLI scenario is copied there for artifact upload.
"""

import json
import multiprocessing
import os
import shutil
import warnings

import pytest

from repro.cli import main
from repro.core.cache import ReductionCache
from repro.core.diskcache import DiskCache, DiskCacheWarning
from repro.core.estimator import PQEEngine
from repro.core.journal import JournalWarning, load_journal
from repro.core.parallel import BatchItem
from repro.db.fact import Fact
from repro.db.probabilistic import ProbabilisticDatabase
from repro.testing.faults import (
    FaultSpec,
    flip_bit,
    inject_faults,
    truncate_tail,
)

pytestmark = [
    pytest.mark.chaos,
    pytest.mark.skipif(
        "fork" not in multiprocessing.get_all_start_methods(),
        reason="chaos scenarios need fork-based process isolation",
    ),
]

#: The item the fault plan kills the worker on.  Every item owns a
#: distinct database, so each one performs its own ``counting.nfta``
#: build and the scoped crash site reliably fires mid-batch.
CRASH_INDEX = 3


def _sixteen_items(rs_query):
    items = []
    for shift in range(16):
        labels = {}
        for i in range(3):
            labels[Fact("R", (f"a{i + shift}", f"b{i}"))] = "1/2"
            labels[Fact("S", (f"b{i}", f"c{i}"))] = "2/3"
        items.append(
            BatchItem(rs_query, ProbabilisticDatabase(labels),
                      method="fpras")
        )
    return items


def _identity_surface(batch):
    """The parts of a BatchResult covered by the resume-identity
    contract: answers (value/method/exactness/rational), seeds, and the
    merged replay-stable deterministic counters."""
    answers = tuple(
        (
            result.answer.value,
            result.answer.method,
            result.answer.exact,
            result.answer.rational,
        )
        for result in batch.results
    )
    seeds = tuple(result.seed for result in batch.results)
    counters = (
        batch.telemetry.metrics.replay_stable_counters()
        if batch.telemetry is not None
        else None
    )
    return answers, seeds, counters


def _export_artifact(path):
    artifact_dir = os.environ.get("CHAOS_ARTIFACT_DIR")
    if artifact_dir:
        os.makedirs(artifact_dir, exist_ok=True)
        shutil.copy(path, artifact_dir)


class TestSigkillResumeIdentity:
    @pytest.mark.parametrize("workers", [1, 4])
    def test_sigkilled_batch_resumes_bitwise_identical(
        self, rs_query, tmp_path, workers
    ):
        items = _sixteen_items(rs_query)
        engine = PQEEngine(seed=2023)
        journal = tmp_path / f"batch-w{workers}.wal"

        uninterrupted = engine.evaluate_batch(
            items, seed=2023, max_workers=workers, telemetry=True
        )

        with inject_faults(
            FaultSpec("counting.nfta", scope=CRASH_INDEX, crash="sigkill")
        ):
            crashed = engine.evaluate_batch(
                items, seed=2023, max_workers=workers,
                isolation="process", on_error="skip",
                journal=journal, telemetry=True,
            )
        assert not crashed.results[CRASH_INDEX].ok
        assert (
            crashed.results[CRASH_INDEX].error.exception
            == "WorkerCrashError"
        )
        survivors = len(crashed.succeeded)
        assert survivors == len(items) - 1

        resumed = engine.resume_batch(
            items, seed=2023, max_workers=workers, journal=journal,
            telemetry=True,
        )
        assert resumed.ok
        assert sum(r.replayed for r in resumed.results) == survivors
        assert _identity_surface(resumed) == _identity_surface(
            uninterrupted
        )

    def test_resume_identity_across_worker_counts(
        self, rs_query, tmp_path
    ):
        # Crash at workers 4, resume at workers 1: the journal carries
        # no scheduling, so even the backend/width may change between
        # the crash and the resume.
        items = _sixteen_items(rs_query)
        engine = PQEEngine(seed=2023)
        journal = tmp_path / "cross.wal"
        uninterrupted = engine.evaluate_batch(
            items, seed=2023, max_workers=1, telemetry=True
        )
        with inject_faults(
            FaultSpec("counting.nfta", scope=CRASH_INDEX, crash="sigkill")
        ):
            engine.evaluate_batch(
                items, seed=2023, max_workers=4, isolation="process",
                on_error="skip", journal=journal, telemetry=True,
            )
        resumed = engine.resume_batch(
            items, seed=2023, max_workers=1, journal=journal,
            telemetry=True,
        )
        assert _identity_surface(resumed) == _identity_surface(
            uninterrupted
        )


CSV = "relation,probability,constant1,constant2\n" + "".join(
    f"R,1/2,a{i},b{i}\nS,2/3,b{i},c{i}\n" for i in range(3)
)

BATCH = json.dumps(
    [{"query": "Q :- R(x, y), S(y, z)", "method": "fpras"}] * 4
)


class TestCliResume:
    def test_crash_journal_resume_via_cli_flags(self, tmp_path, capsys):
        data = tmp_path / "facts.csv"
        data.write_text(CSV)
        batch = tmp_path / "batch.json"
        batch.write_text(BATCH)
        journal = tmp_path / "cli.wal"

        base_args = [
            "eval", "--data", str(data), "--batch", str(batch),
            "--seed", "7", "--workers", "2",
        ]
        assert main(base_args) == 0
        clean_rows = [
            line for line in capsys.readouterr().out.splitlines()
            if line.startswith("[")
        ]

        # All four CLI items share one database, so only the first
        # build reaches the fault site: crash the worker there.
        with inject_faults(
            FaultSpec("counting.nfta", scope=0, crash="sigkill")
        ):
            code = main(
                base_args
                + ["--isolation", "process", "--on-error", "skip",
                   "--journal", str(journal)]
            )
        assert code == 3  # EXIT_PARTIAL: the crashed item failed
        assert "WorkerCrashError" in capsys.readouterr().out

        code = main(base_args + ["--journal", str(journal), "--resume"])
        assert code == 0
        out = capsys.readouterr().out
        resumed_rows = [
            line for line in out.splitlines() if line.startswith("[")
        ]
        assert resumed_rows == clean_rows
        assert "resumed:" in out
        _export_artifact(journal)


CHILD_SCRIPT = """\
import sys

from repro.cli import main
from repro.testing.faults import FaultSpec, inject_faults

# Every item stalls at its first pipeline phase, long enough for the
# parent's SIGTERM to land while the batch is mid-flight.
with inject_faults(
    FaultSpec("decomposition.search", stall=1.5),
    FaultSpec("lineage.build", stall=1.5),
):
    sys.exit(main(sys.argv[1:]))
"""


class TestSigtermBatchDrain:
    """SIGTERM mid-batch drains: every admitted item settles and is
    journalled, the process exits EXIT_DRAINED, and ``--resume``
    finishes the batch bitwise-identically to an uninterrupted run."""

    def test_sigterm_drains_and_resume_is_bitwise_identical(
        self, tmp_path
    ):
        import repro
        import signal
        import subprocess
        import sys as _sys
        import time
        from pathlib import Path

        data = tmp_path / "facts.csv"
        # The non-hierarchical triad: its fpras route runs the full
        # decomposition chain, so the stall sites reliably fire.
        data.write_text(
            "relation,probability,constant1,constant2\n"
            "R,1/2,a\nR,1/3,b\nS,1/2,a,b\nS,2/3,b,c\nT,1/2,b\nT,1/3,c\n"
        )
        batch = tmp_path / "batch.json"
        # Default (auto) method: small instances resolve through the
        # lineage path, so the ``lineage.build`` stall site fires.
        batch.write_text(json.dumps(
            ["Q :- R(x), S(x, y), T(y)"] * 6
        ))
        journal = tmp_path / "drain.wal"
        base_args = [
            "--data", str(data), "--batch", str(batch),
            "--seed", "7", "--workers", "1",
        ]

        # Reference: the same batch, uninterrupted and unstalled.
        clean = subprocess.run(
            [_sys.executable, "-m", "repro", "eval", *base_args],
            capture_output=True, text=True,
            env={**os.environ,
                 "PYTHONPATH": str(Path(repro.__file__).parents[1])},
        )
        assert clean.returncode == 0
        clean_rows = [
            line for line in clean.stdout.splitlines()
            if line.startswith("[")
        ]
        assert len(clean_rows) == 6

        # Chaos run: stalled items, SIGTERM mid-batch.
        script = tmp_path / "child.py"
        script.write_text(CHILD_SCRIPT)
        child = subprocess.Popen(
            [_sys.executable, str(script), *base_args,
             "--journal", str(journal)],
            stdout=subprocess.PIPE, stderr=subprocess.PIPE, text=True,
            env={**os.environ,
                 "PYTHONPATH": str(Path(repro.__file__).parents[1])},
        )
        time.sleep(1.0)  # inside item 0's 1.5s stall
        child.send_signal(signal.SIGTERM)
        out, err = child.communicate(timeout=60)
        assert child.returncode == 5, (out, err)  # EXIT_DRAINED
        assert "drained:" in err
        assert "--resume" in out
        drained_rows = [
            line for line in out.splitlines() if line.startswith("[")
        ]
        # At least one item settled, at least one was never admitted.
        assert 1 <= len(drained_rows) < 6
        # Every settled row already matches the uninterrupted run.
        assert drained_rows == clean_rows[:len(drained_rows)]

        # Resume: the drained journal finishes the batch bitwise.
        code = main(base_args + ["--journal", str(journal), "--resume"])
        assert code == 0
        _export_artifact(journal)

    def test_resume_rows_match_clean_run(self, tmp_path, capsys):
        # In-process half of the scenario above: drain via the global
        # drain event (what the SIGTERM handler calls), then resume.
        from repro.core.parallel import clear_drain, request_drain
        import threading

        data = tmp_path / "facts.csv"
        data.write_text(CSV)
        batch = tmp_path / "batch.json"
        batch.write_text(BATCH)
        journal = tmp_path / "inproc.wal"
        base_args = [
            "--data", str(data), "--batch", str(batch),
            "--seed", "7", "--workers", "1",
        ]
        assert main(base_args) == 0
        clean_rows = [
            line for line in capsys.readouterr().out.splitlines()
            if line.startswith("[")
        ]

        with inject_faults(
            FaultSpec("counting.nfta", scope=0, stall=1.0)
        ):
            timer = threading.Timer(0.3, request_drain)
            timer.start()
            try:
                code = main(
                    base_args + ["--journal", str(journal)]
                )
            finally:
                timer.cancel()
        assert code == 5  # EXIT_DRAINED
        drained = capsys.readouterr()
        drained_rows = [
            line for line in drained.out.splitlines()
            if line.startswith("[")
        ]
        assert 1 <= len(drained_rows) < 4

        # A real resume runs in a fresh process, which starts with the
        # drain flag clear; mirror that for the in-process resume.
        clear_drain()
        code = main(base_args + ["--journal", str(journal), "--resume"])
        assert code == 0
        resumed_rows = [
            line for line in capsys.readouterr().out.splitlines()
            if line.startswith("[")
        ]
        assert resumed_rows == clean_rows


class TestDurableStateCorruption:
    def test_bit_flipped_disk_cache_record_never_wrong(
        self, rs_query, tmp_path
    ):
        items = _sixteen_items(rs_query)[:6]
        engine = PQEEngine(seed=9)
        clean = engine.evaluate_batch(items, seed=9)

        disk = DiskCache(tmp_path / "cache")
        engine.evaluate_batch(
            items, seed=9, cache=ReductionCache(disk=disk)
        )
        records = sorted(disk.path.glob("*.rpdc"))
        assert records
        for record in records:
            flip_bit(record, offset=-1, bit=2)

        with warnings.catch_warnings(record=True) as caught:
            warnings.simplefilter("always")
            rerun = engine.evaluate_batch(
                items, seed=9, cache=ReductionCache(disk=disk)
            )
        assert any(
            issubclass(w.category, DiskCacheWarning) for w in caught
        )
        assert rerun.values == clean.values  # rebuilt, never served
        assert disk.quarantined()

    def test_torn_journal_tail_never_wrong(self, rs_query, tmp_path):
        items = _sixteen_items(rs_query)[:6]
        engine = PQEEngine(seed=9)
        journal = tmp_path / "torn.wal"
        clean = engine.evaluate_batch(
            items, seed=9, journal=journal, telemetry=True
        )
        truncate_tail(journal, drop_bytes=40)

        with warnings.catch_warnings(record=True) as caught:
            warnings.simplefilter("always")
            resumed = engine.resume_batch(
                items, seed=9, journal=journal, telemetry=True
            )
        assert any(
            issubclass(w.category, JournalWarning) for w in caught
        )
        assert _identity_surface(resumed) == _identity_surface(clean)

    def test_doubly_damaged_journal_still_loads_prefix(
        self, rs_query, tmp_path
    ):
        items = _sixteen_items(rs_query)[:6]
        engine = PQEEngine(seed=9)
        journal = tmp_path / "mangled.wal"
        clean = engine.evaluate_batch(items, seed=9, journal=journal)
        # A torn tail *and* a flipped bit in the middle: the loader
        # keeps whatever verified prefix remains.
        truncate_tail(journal, drop_bytes=20)
        flip_bit(journal, offset=len(journal.read_bytes()) // 2, bit=5)
        with warnings.catch_warnings(record=True):
            warnings.simplefilter("always")
            loaded = load_journal(journal)
            resumed = engine.resume_batch(items, seed=9, journal=journal)
        assert loaded.quarantined >= 1
        assert resumed.values == clean.values
