"""Unit tests for structural query properties (hierarchy, safety, paths)."""

import pytest

from repro.queries.atoms import make_atom
from repro.queries.cq import ConjunctiveQuery
from repro.queries.parser import parse_query
from repro.queries.properties import (
    atom_sets_by_variable,
    is_hierarchical,
    is_path_query,
    is_safe,
    is_self_join_free,
)


class TestHierarchy:
    def test_h0_is_not_hierarchical(self):
        # The canonical unsafe query R(x), S(x,y), T(y).
        q = parse_query("R(x), S(x, y), T(y)")
        assert not is_hierarchical(q)

    def test_star_hierarchical(self):
        q = parse_query("R1(c, y1), R2(c, y2), R3(c, y3)")
        assert is_hierarchical(q)

    def test_single_atom(self):
        assert is_hierarchical(parse_query("R(x, y)"))

    def test_disjoint_atoms(self):
        assert is_hierarchical(parse_query("R(x, y), S(u, v)"))

    def test_nested_containment(self):
        # at(x) ⊇ at(y): hierarchical.
        q = parse_query("R(x, y), S(x)")
        assert is_hierarchical(q)

    def test_atom_sets_by_variable(self):
        q = parse_query("R(x, y), S(y, z)")
        sets = atom_sets_by_variable(q)
        assert len(sets[q.atoms[0].args[0]]) == 1  # x
        assert len(sets[q.atoms[0].args[1]]) == 2  # y


class TestSafety:
    def test_safe_iff_hierarchical_for_sjf(self):
        assert is_safe(parse_query("R1(c, y1), R2(c, y2)"))
        assert not is_safe(parse_query("R(x), S(x, y), T(y)"))

    def test_self_join_raises(self):
        with pytest.raises(NotImplementedError):
            is_safe(parse_query("R(x, y), R(y, z)"))


class TestSelfJoinFree:
    def test_true(self):
        assert is_self_join_free(parse_query("R(x, y), S(y, z)"))

    def test_false(self):
        assert not is_self_join_free(parse_query("R(x, y), R(y, z)"))


class TestPathDetection:
    def test_positive(self):
        assert is_path_query(parse_query("A(x, y), B(y, z), C(z, w)"))

    def test_order_insensitive(self):
        assert is_path_query(parse_query("B(y, z), A(x, y), C(z, w)"))

    def test_single_binary_atom(self):
        assert is_path_query(parse_query("R(x, y)"))

    def test_self_loop_not_path(self):
        assert not is_path_query(parse_query("R(x, x)"))

    def test_star_not_path(self):
        assert not is_path_query(parse_query("R1(c, y1), R2(c, y2)"))

    def test_cycle_not_path(self):
        assert not is_path_query(parse_query("R(x, y), S(y, x)"))

    def test_ternary_not_path(self):
        assert not is_path_query(parse_query("R(x, y, z)"))

    def test_disconnected_not_path(self):
        assert not is_path_query(parse_query("R(x, y), S(u, v)"))

    def test_branching_not_path(self):
        assert not is_path_query(parse_query("R(x, y), S(x, z)"))

    def test_two_paths_merging_not_path(self):
        assert not is_path_query(parse_query("R(x, z), S(y, z)"))
