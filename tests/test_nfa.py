"""Unit and property tests for the NFA substrate."""

import random

import pytest
from hypothesis import given, settings
from hypothesis import strategies as st

from repro.automata.nfa import NFA
from repro.errors import AutomatonError


def _ab_star_ending_b() -> NFA:
    """(a|b)* b  over {a, b}."""
    return NFA(
        [
            (0, "a", 0),
            (0, "b", 0),
            (0, "b", 1),
        ],
        initial=[0],
        accepting=[1],
    )


def _random_nfa(seed: int, states: int = 5) -> NFA:
    rng = random.Random(seed)
    transitions = []
    for s in range(states):
        for symbol in "ab":
            for t in range(states):
                if rng.random() < 0.3:
                    transitions.append((s, symbol, t))
    initial = [s for s in range(states) if rng.random() < 0.5] or [0]
    accepting = [s for s in range(states) if rng.random() < 0.4]
    return NFA(transitions, initial=initial, accepting=accepting)


class TestMembership:
    def test_accepts(self):
        nfa = _ab_star_ending_b()
        assert nfa.accepts(["b"])
        assert nfa.accepts(["a", "a", "b"])
        assert not nfa.accepts(["a"])
        assert not nfa.accepts([])

    def test_accepts_from_state(self):
        nfa = _ab_star_ending_b()
        assert nfa.accepts_from(0, ["b"])
        assert not nfa.accepts_from(1, ["b"])
        assert nfa.accepts_from_set(frozenset({1}), [])

    def test_no_initial_states_rejected(self):
        with pytest.raises(AutomatonError):
            NFA([(0, "a", 1)], initial=[], accepting=[1])


class TestCounting:
    def test_count_exact_known_language(self):
        # Strings of length n over {a,b} ending in b: 2^(n-1).
        nfa = _ab_star_ending_b()
        for n in range(1, 8):
            assert nfa.count_exact(n) == 2 ** (n - 1)

    def test_count_zero_length(self):
        nfa = _ab_star_ending_b()
        assert nfa.count_exact(0) == 0
        accepting_start = NFA([(0, "a", 0)], initial=[0], accepting=[0])
        assert accepting_start.count_exact(0) == 1

    def test_negative_length_rejected(self):
        with pytest.raises(AutomatonError):
            _ab_star_ending_b().count_exact(-1)

    @given(st.integers(min_value=0, max_value=10_000))
    @settings(max_examples=25, deadline=None)
    def test_count_matches_enumeration(self, seed):
        nfa = _random_nfa(seed)
        for n in range(0, 5):
            enumerated = list(nfa.enumerate_language(n))
            assert nfa.count_exact(n) == len(enumerated)
            assert len(set(enumerated)) == len(enumerated)
            for word in enumerated:
                assert nfa.accepts(word)


class TestTrim:
    @given(st.integers(min_value=0, max_value=10_000))
    @settings(max_examples=25, deadline=None)
    def test_trim_preserves_language(self, seed):
        nfa = _random_nfa(seed)
        trimmed = nfa.trimmed()
        for n in range(0, 5):
            assert trimmed.count_exact(n) == nfa.count_exact(n)

    def test_trim_removes_dead_states(self):
        nfa = NFA(
            [(0, "a", 1), (0, "a", 2), (2, "b", 2)],
            initial=[0],
            accepting=[1],
        )
        trimmed = nfa.trimmed()
        assert 2 not in trimmed.states

    def test_trim_empty_language(self):
        nfa = NFA([(0, "a", 1)], initial=[0], accepting=[])
        trimmed = nfa.trimmed()
        assert trimmed.count_exact(1) == 0


class TestStructure:
    def test_num_transitions(self):
        assert _ab_star_ending_b().num_transitions == 3

    def test_successors(self):
        nfa = _ab_star_ending_b()
        assert nfa.successors(0)["b"] == frozenset({0, 1})
        assert nfa.successors(1) == {}

    def test_transitions_iteration(self):
        assert len(list(_ab_star_ending_b().transitions())) == 3
