"""Unit tests for the probabilistic-graph RPQ subsystem.

Fast, deterministic coverage of :mod:`repro.graphs` and its wiring:
the data model (canonical order, cache tokens, topological order), the
RPQ parser/Glushkov compiler, the layered product reduction's trivial
and error cases, the engine/batch/CLI surfaces, and the workload
generators.  The heavyweight cross-oracle comparisons live in the
``-m rpq`` differential tier (``test_rpq_differential.py``).
"""

from __future__ import annotations

from fractions import Fraction

import pytest

from repro.core.cache import ReductionCache
from repro.core.estimator import PQEEngine
from repro.core.parallel import BatchItem
from repro.core.resilience import degradation_ladder, evaluate_with_policy
from repro.errors import (
    EstimationError,
    GraphError,
    ProbabilityError,
    ReproError,
)
from repro.graphs import (
    Edge,
    ProbabilisticGraph,
    RPQQuery,
    build_rpq_nfa,
    parse_rpq,
    relevant_edges,
    repetitions_for_delta,
    rpq_brute_force,
    rpq_holds,
    rpq_probability_estimate,
)
from repro.graphs.rpq import ParseError, RPQExpression
from repro.workloads import (
    grid_graph,
    layered_dag_graph,
    preferential_attachment_graph,
    rpq_workloads,
)

# A diamond DAG with a chord: s →a u →b t, s →a v →b t, u →c v.
DIAMOND = ProbabilisticGraph({
    Edge("s", "a", "u"): "1/2",
    Edge("s", "a", "v"): "1/3",
    Edge("u", "b", "t"): "2/3",
    Edge("v", "b", "t"): "3/4",
    Edge("u", "c", "v"): "1/2",
})

AB = RPQQuery("a b", "s", "t")

CYCLE = ProbabilisticGraph({
    Edge("s", "a", "t"): "1/2",
    Edge("t", "a", "s"): "1/2",
})


# ---------------------------------------------------------------------
# Model
# ---------------------------------------------------------------------

def test_edges_are_canonically_sorted():
    assert DIAMOND.edges == tuple(
        sorted(DIAMOND.edges, key=lambda e: e.sort_key)
    )


def test_probability_labels_are_exact_rationals():
    assert DIAMOND.probability(Edge("s", "a", "u")) == Fraction(1, 2)
    with pytest.raises(ProbabilityError):
        DIAMOND.probability(Edge("x", "a", "y"))
    with pytest.raises(ProbabilityError):
        ProbabilisticGraph({Edge("a", "x", "b"): "3/2"})


def test_cache_token_is_content_addressed():
    clone = ProbabilisticGraph(DIAMOND.probabilities)
    assert clone.cache_token == DIAMOND.cache_token
    tweaked = dict(DIAMOND.probabilities)
    tweaked[Edge("s", "a", "u")] = Fraction(1, 4)
    assert (
        ProbabilisticGraph(tweaked).cache_token != DIAMOND.cache_token
    )
    # Isolated nodes are part of the identity (they are legal RPQ
    # endpoints, so two graphs differing only there are not equal).
    with_node = ProbabilisticGraph(
        DIAMOND.probabilities, nodes=["lonely"]
    )
    assert with_node.cache_token != DIAMOND.cache_token


def test_topological_order_is_deterministic_and_cycle_aware():
    order = DIAMOND.topological_order
    assert order is not None
    position = {node: i for i, node in enumerate(order)}
    for edge in DIAMOND.edges:
        assert position[edge.source] < position[edge.target]
    assert CYCLE.topological_order is None
    assert not CYCLE.is_acyclic


def test_subgraph_probability_sums_to_one():
    small = ProbabilisticGraph({
        Edge("a", "x", "b"): "1/2",
        Edge("b", "x", "c"): "1/3",
    })
    edges = small.edges
    total = sum(
        small.subgraph_probability(
            [edges[i] for i in range(2) if mask >> i & 1]
        )
        for mask in range(4)
    )
    assert total == 1


# ---------------------------------------------------------------------
# RPQ parsing and matching
# ---------------------------------------------------------------------

def test_parse_round_trips_canonical_form():
    for text in ("a b", "a|b c", "(a|b)* c+ d?", "a (b|c)* a"):
        node = parse_rpq(text)
        assert parse_rpq(str(node)) == node


@pytest.mark.parametrize("bad", ["", "(a", "a)", "*a", "a **b(", "a-b"])
def test_parse_rejects_malformed_regexes(bad):
    with pytest.raises(ParseError):
        parse_rpq(bad)


def test_empty_union_branch_reads_as_epsilon():
    # ``a|`` is ``a?``: the empty branch denotes the empty word.
    assert RPQExpression("a|").matches(())
    assert RPQExpression("a|").matches(("a",))
    assert not RPQExpression("a|").matches(("b",))


def test_expression_matches_words():
    expr = RPQExpression("a (b|c)* a")
    assert expr.matches(("a", "a"))
    assert expr.matches(("a", "b", "c", "b", "a"))
    assert not expr.matches(("a", "b"))
    assert not expr.matches(())
    assert RPQExpression("a*").matches(())
    assert RPQExpression("a*").nullable


def test_query_cache_token_tracks_canonical_form():
    # Same language, same canonical text → same token; different
    # endpoints or regex → different token.
    assert (
        RPQQuery("a  b", "s", "t").cache_token
        == RPQQuery("a b", "s", "t").cache_token
    )
    assert (
        RPQQuery("a b", "s", "t").cache_token
        != RPQQuery("a b", "s", "u").cache_token
    )
    assert (
        RPQQuery("a b", "s", "t").cache_token
        != RPQQuery("a|b", "s", "t").cache_token
    )


# ---------------------------------------------------------------------
# Reduction structure
# ---------------------------------------------------------------------

def test_relevant_edges_prunes_labels_and_corridors():
    rel = relevant_edges(DIAMOND, AB)
    labels = {e.label for e in rel}
    assert labels <= {"a", "b"}
    # The chord u→c→v is label-irrelevant for "a b".
    assert Edge("u", "c", "v") not in rel
    assert len(rel) == 4


def test_trivial_cases_short_circuit():
    # Nullable regex, source == target: probability exactly 1.
    r1 = build_rpq_nfa(DIAMOND, RPQQuery("a*", "s", "s"))
    assert r1.trivial == 1
    # No relevant edges: probability exactly 0.
    r0 = build_rpq_nfa(DIAMOND, RPQQuery("zz", "s", "t"))
    assert r0.trivial == 0


def test_unknown_endpoint_raises_graph_error():
    with pytest.raises(GraphError):
        build_rpq_nfa(DIAMOND, RPQQuery("a", "nowhere", "t"))


def test_cyclic_graph_raises_graph_error_on_product_routes():
    with pytest.raises(GraphError):
        build_rpq_nfa(CYCLE, RPQQuery("a", "s", "t"))
    with pytest.raises(GraphError):
        rpq_probability_estimate(CYCLE, RPQQuery("a", "s", "t"),
                                 method="exact")


def test_rpq_holds_is_a_reachability_oracle():
    world = [Edge("s", "a", "u"), Edge("u", "b", "t")]
    assert rpq_holds(world, AB)
    assert not rpq_holds(world[:1], AB)
    # Nullable self-query holds in the empty world.
    assert rpq_holds([], RPQQuery("a*", "s", "s"))
    # Cyclic worlds are fine for the BFS oracle.
    assert rpq_holds(CYCLE.edges, RPQQuery("a a a", "s", "t"))


def test_diamond_probability_is_exact_by_hand():
    # Pr = 1 - (1 - 1/2*2/3)(1 - 1/3*3/4) = 1/2.
    assert rpq_brute_force(DIAMOND, AB) == Fraction(1, 2)
    est = rpq_probability_estimate(DIAMOND, AB, method="exact")
    assert est.exact and est.rational == Fraction(1, 2)


# ---------------------------------------------------------------------
# Route-level evaluator
# ---------------------------------------------------------------------

def test_unknown_method_is_rejected():
    with pytest.raises(EstimationError):
        rpq_probability_estimate(DIAMOND, AB, method="lifted")


def test_enumerate_refuses_large_edge_sets():
    big = grid_graph(4, 4, seed=0)
    query = RPQQuery("(a|b)(a|b)(a|b)(a|b)(a|b)(a|b)", "n0_0", "n3_3")
    assert len(relevant_edges(big, query)) > 20
    with pytest.raises(EstimationError):
        rpq_probability_estimate(big, query, method="enumerate")


def test_auto_routes_cyclic_graphs_structurally():
    # Small cyclic graph → enumeration, still exact.
    est = rpq_probability_estimate(
        CYCLE, RPQQuery("a", "s", "t"), method="auto"
    )
    assert est.method == "enumerate" and est.exact
    assert est.rational == Fraction(1, 2)


def test_monte_carlo_is_seed_deterministic():
    a = rpq_probability_estimate(
        DIAMOND, AB, method="monte-carlo", seed=11, samples=500
    )
    b = rpq_probability_estimate(
        DIAMOND, AB, method="monte-carlo", seed=11, samples=500
    )
    assert a.estimate == b.estimate
    assert a.samples_used == 500
    assert abs(a.estimate - 0.5) < 0.15


def test_repetitions_for_delta_is_odd_and_monotone():
    assert repetitions_for_delta(None) == 1
    assert repetitions_for_delta(None, floor=4) == 5   # rounded to odd
    r1 = repetitions_for_delta(0.25)
    r2 = repetitions_for_delta(0.01)
    assert r1 % 2 == 1 and r2 % 2 == 1 and r2 > r1
    with pytest.raises(EstimationError):
        repetitions_for_delta(1.5)


# ---------------------------------------------------------------------
# Engine / resilience / batch / cache wiring
# ---------------------------------------------------------------------

def test_engine_rpq_probability_accepts_strings_and_queries():
    engine = PQEEngine(seed=5)
    from_query = engine.rpq_probability(DIAMOND, AB)
    from_text = engine.rpq_probability(
        DIAMOND, "a b", source="s", target="t"
    )
    assert from_query == from_text
    assert from_query.rational == Fraction(1, 2)
    with pytest.raises(ReproError):
        engine.rpq_probability(DIAMOND, "a b")   # endpoints missing


def test_engine_rpq_telemetry_spans():
    answer = PQEEngine(seed=5).rpq_probability(
        DIAMOND, AB, telemetry=True
    )
    names = {record.name for record in answer.telemetry.spans}
    assert {"rpq_probability", "rpq.compile", "rpq.product",
            "rpq.count"} <= names


def test_rpq_degradation_ladder_shape():
    assert degradation_ladder(AB, "rpq", "auto") == (
        "auto", "fpras", "monte-carlo"
    )
    assert degradation_ladder(AB, "rpq", "exact") == (
        "exact", "fpras", "monte-carlo"
    )
    assert degradation_ladder(AB, "rpq", "fpras") == (
        "fpras", "monte-carlo"
    )
    assert degradation_ladder(AB, "rpq", "monte-carlo") == (
        "monte-carlo",
    )


def test_cyclic_fpras_degrades_to_monte_carlo():
    answer = evaluate_with_policy(
        PQEEngine(seed=3, epsilon=0.2),
        RPQQuery("a", "s", "t"),
        CYCLE,
        task="rpq",
        method="fpras",
        seed=3,
    )
    assert answer.method == "monte-carlo"
    assert answer.degraded
    assert "GraphError" in answer.degradations[0]


def test_batch_items_validate_types():
    with pytest.raises(ReproError):
        BatchItem(AB, DIAMOND, task="nonsense").validated(0)
    with pytest.raises(ReproError):
        # rpq task over a non-graph database.
        BatchItem(AB, object(), task="rpq").validated(0)
    with pytest.raises(ReproError):
        # rpq task with a non-RPQ query.
        BatchItem("a b", DIAMOND, task="rpq").validated(0)


def test_batch_tuple_items_infer_the_rpq_task():
    engine = PQEEngine(seed=9)
    batch = engine.evaluate_batch([(AB, DIAMOND)], max_workers=1)
    assert batch.values == (0.5,)


def test_reduction_cache_reuses_the_product():
    cache = ReductionCache()
    engine = PQEEngine(seed=2)
    engine.rpq_probability(DIAMOND, AB, cache=cache)
    stats_after_first = cache.stats.misses
    engine.rpq_probability(DIAMOND, AB, cache=cache)
    assert cache.stats.hits > 0
    assert cache.stats.misses == stats_after_first


# ---------------------------------------------------------------------
# Workload generators
# ---------------------------------------------------------------------

def test_generators_are_hash_stable():
    assert grid_graph(3, 3, seed=4) == grid_graph(3, 3, seed=4)
    assert grid_graph(3, 3, seed=4) != grid_graph(3, 3, seed=5)
    assert (
        layered_dag_graph(3, 2, seed=1)
        == layered_dag_graph(3, 2, seed=1)
    )
    assert (
        preferential_attachment_graph(8, seed=2)
        == preferential_attachment_graph(8, seed=2)
    )


def test_generated_graphs_are_dags():
    assert grid_graph(4, 5, seed=0).is_acyclic
    assert layered_dag_graph(5, 3, seed=0).is_acyclic
    assert preferential_attachment_graph(12, seed=0).is_acyclic


def test_generator_argument_validation():
    with pytest.raises(ReproError):
        grid_graph(0, 3)
    with pytest.raises(ReproError):
        layered_dag_graph(1, 2)
    with pytest.raises(ReproError):
        preferential_attachment_graph(1)
    with pytest.raises(ReproError):
        grid_graph(2, 2, labels=())


def test_workload_corpus_is_pinned_and_nontrivial():
    corpus = rpq_workloads()
    assert len(corpus) == 8
    names = [name for name, _, _ in corpus]
    assert len(set(names)) == 8
    for _name, graph, query in corpus:
        assert graph.is_acyclic
        assert relevant_edges(graph, query)
