"""Route degradation, retry seeds, and the resilience policy layer.

Covers :mod:`repro.core.resilience`: ladder construction, deterministic
retry seed derivation, provenance stamping on answers and terminal
failures, and the deadline-aborts / work-cap-degrades asymmetry.
"""

import pytest

from repro.core.budget import EvaluationBudget
from repro.core.estimator import PQEEngine
from repro.core.resilience import (
    DegradationPolicy,
    degradation_ladder,
    derive_retry_seed,
    evaluate_with_policy,
)
from repro.db.fact import Fact
from repro.db.probabilistic import ProbabilisticDatabase
from repro.errors import BudgetExceededError, ReproError
from repro.queries.parser import parse_query
from repro.testing import FaultSpec, inject_faults

QUERY = parse_query("Q :- R1(x, y), R2(y, z)")
SELF_JOIN = parse_query("Q :- R1(x, y), R1(y, z)")

PDB = ProbabilisticDatabase({
    Fact("R1", ("a", "b")): "1/2",
    Fact("R1", ("a", "c")): "2/3",
    Fact("R2", ("b", "d")): "3/4",
    Fact("R2", ("c", "d")): "2/5",
})


def sampled_engine(seed=None):
    return PQEEngine(epsilon=0.5, exact_set_cap=0, seed=seed)


# ---------------------------------------------------------------------
# Seeds, policy, ladder
# ---------------------------------------------------------------------

def test_derive_retry_seed_contract():
    assert derive_retry_seed(None, 3) is None
    assert derive_retry_seed(7, 0) == 7          # attempt 0 = original
    assert derive_retry_seed(7, 1) == derive_retry_seed(7, 1)
    seeds = {derive_retry_seed(7, attempt) for attempt in range(50)}
    assert len(seeds) == 50
    assert derive_retry_seed(7, 1) != derive_retry_seed(8, 1)


def test_policy_validation_and_backoff():
    with pytest.raises(ReproError):
        DegradationPolicy(max_retries=-1)
    with pytest.raises(ReproError):
        DegradationPolicy(epsilon_widening=0.5)
    policy = DegradationPolicy(backoff_base=0.1, backoff_cap=0.3)
    assert policy.backoff(1) == pytest.approx(0.1)
    assert policy.backoff(2) == pytest.approx(0.2)
    assert policy.backoff(5) == pytest.approx(0.3)   # capped
    assert DegradationPolicy().backoff(9) == 0.0


def test_backoff_jitter_is_deterministic_and_bounded():
    policy = DegradationPolicy(
        backoff_base=0.1, backoff_cap=0.3, jitter=0.5
    )
    delays = [policy.backoff(attempt, seed=7) for attempt in (1, 2, 5)]
    # Same seed → same jittered schedule, always.
    assert delays == [
        policy.backoff(attempt, seed=7) for attempt in (1, 2, 5)
    ]
    # A different seed decorrelates the schedule (the point of jitter:
    # retrying peers must not re-collide).
    assert delays != [
        policy.backoff(attempt, seed=8) for attempt in (1, 2, 5)
    ]
    # Jitter only ever *shrinks* the delay, within the jitter fraction.
    for attempt, delay in zip((1, 2, 5), delays):
        ceiling = min(0.1 * 2 ** (attempt - 1), 0.3)
        assert ceiling * (1 - 0.5) <= delay <= ceiling


def test_backoff_jitter_derives_from_retry_seed_stream():
    # The jitter stream is derive_retry_seed(seed, attempt + 1) — the
    # +1 matters because attempt 0 returns the seed unchanged (not a
    # hash output, so not uniform).
    policy = DegradationPolicy(backoff_base=1.0, jitter=1.0)
    stream = derive_retry_seed(7, 2)
    unit = (stream >> 11) / float(1 << 53)
    assert policy.backoff(1, seed=7) == pytest.approx(1.0 - unit)
    # seed=None falls back to stream 0, still deterministic.
    assert policy.backoff(1) == policy.backoff(1, seed=None)
    assert 0.0 <= policy.backoff(1) <= 1.0


def test_backoff_jitter_validation_and_default_off():
    with pytest.raises(ReproError):
        DegradationPolicy(jitter=-0.1)
    with pytest.raises(ReproError):
        DegradationPolicy(jitter=1.5)
    # jitter defaults to 0: the un-jittered schedule is unchanged.
    policy = DegradationPolicy(backoff_base=0.1, backoff_cap=0.3)
    assert policy.backoff(2, seed=7) == pytest.approx(0.2)


def test_epsilon_widening_is_capped():
    policy = DegradationPolicy(epsilon_widening=2.0, epsilon_max=0.5)
    assert policy.widened_epsilon(0.1, 0) == 0.1
    assert policy.widened_epsilon(0.1, 1) == pytest.approx(0.2)
    assert policy.widened_epsilon(0.1, 3) == 0.5     # capped at max


def test_degradation_ladder_shapes():
    # QUERY is hierarchical, so its auto ladder starts at the lifted
    # rung (which subsumes auto for safe queries).
    assert degradation_ladder(QUERY) == ("lifted", "fpras", "monte-carlo")
    assert degradation_ladder(SELF_JOIN) == (
        "auto", "karp-luby", "monte-carlo"
    )
    unsafe = parse_query("Q :- R1(x), R2(x, y), R3(y)")
    assert degradation_ladder(unsafe) == ("auto", "fpras", "monte-carlo")
    assert degradation_ladder(QUERY, method="fpras") == (
        "fpras", "monte-carlo"
    )
    assert degradation_ladder(QUERY, method="monte-carlo") == (
        "monte-carlo",
    )
    assert degradation_ladder(QUERY, method="safe-plan") == (
        "safe-plan", "fpras", "monte-carlo"
    )
    assert degradation_ladder(unsafe, method="lifted") == (
        "lifted", "fpras", "monte-carlo"
    )
    assert degradation_ladder(QUERY, task="reliability") == (
        "auto", "fpras"
    )


def test_plan_reports_the_ladder():
    plan = PQEEngine().explain(QUERY, PDB)
    assert plan.fallbacks == ("lifted", "fpras", "monte-carlo")
    assert "degradation ladder: lifted -> fpras -> monte-carlo" in (
        plan.describe()
    )


def test_unsafe_query_falls_through_the_lifted_rung():
    # An explicit lifted request on an unsafe query degrades to the
    # FPRAS deterministically, with the classification in provenance.
    unsafe = parse_query("Q :- R1(x), R2(x, y), R3(y)")
    pdb = ProbabilisticDatabase({
        Fact("R1", ("a",)): "1/2",
        Fact("R2", ("a", "b")): "1/2",
        Fact("R3", ("b",)): "1/2",
    })
    answer = evaluate_with_policy(
        sampled_engine(seed=5), unsafe, pdb, method="lifted", seed=5
    )
    assert answer.degraded
    assert answer.degradations[0].startswith("lifted: UnsafeQueryError")
    assert answer.method in ("fpras", "monte-carlo")


# ---------------------------------------------------------------------
# evaluate_with_policy
# ---------------------------------------------------------------------

def test_clean_run_matches_plain_engine_bitwise():
    engine = sampled_engine()
    plain = engine.probability(QUERY, PDB, method="fpras-weighted", seed=11)
    resilient = evaluate_with_policy(
        engine, QUERY, PDB, method="fpras-weighted", seed=11
    )
    assert resilient.value == plain.value
    assert resilient.method == plain.method
    assert resilient.degradations == ()
    assert resilient.retries == 0
    assert not resilient.degraded


def test_transient_fault_is_retried_on_a_derived_seed():
    engine = sampled_engine()
    with inject_faults(FaultSpec("counting.nfta", times=1)):
        answer = evaluate_with_policy(
            engine, QUERY, PDB, method="fpras", seed=11,
            policy=DegradationPolicy(max_retries=1),
        )
    assert answer.retries == 1
    assert answer.degraded
    assert len(answer.degradations) == 1
    assert "injected fault" in answer.degradations[0]
    # The retry ran on derive_retry_seed(11, 1), not the original seed.
    expected = engine.probability(
        QUERY, PDB, method="fpras", seed=derive_retry_seed(11, 1)
    )
    assert answer.value == expected.value


def test_persistent_fault_degrades_to_the_next_route():
    engine = sampled_engine()
    with inject_faults(FaultSpec("counting.nfta")):
        answer = evaluate_with_policy(
            engine, QUERY, PDB, method="fpras", seed=4,
            policy=DegradationPolicy(max_retries=1),
        )
    assert answer.method == "monte-carlo"
    assert answer.degraded
    # fpras attempt + its retry both logged before the fallback.
    assert len(answer.degradations) == 2
    assert answer.degradations[0].startswith("fpras:")
    assert answer.degradations[1].startswith("fpras#retry1:")


def test_ladder_exhaustion_raises_the_last_failure_with_provenance():
    engine = sampled_engine()
    specs = [
        FaultSpec("counting.nfta"),
        FaultSpec("monte_carlo.sample"),
    ]
    with inject_faults(*specs):
        with pytest.raises(ReproError) as info:
            evaluate_with_policy(
                engine, QUERY, PDB, method="fpras", seed=4,
                policy=DegradationPolicy(max_retries=0),
            )
    failure = info.value
    assert failure.degradations[0].startswith("fpras:")
    assert failure.degradations[1].startswith("monte-carlo:")


def test_deadline_exhaustion_aborts_the_ladder():
    # A stalled phase under a deadline: no wall-clock remains for any
    # fallback rung, so the failure surfaces instead of degrading.
    engine = sampled_engine()
    budget = EvaluationBudget(deadline=0.2)
    with inject_faults(FaultSpec("counting.nfta", stall=5.0)):
        with pytest.raises(BudgetExceededError) as info:
            evaluate_with_policy(
                engine, QUERY, PDB, method="fpras", seed=4, budget=budget,
            )
    assert info.value.kind == "deadline"
    # Only the rung that hit the deadline is logged — the ladder stopped.
    assert len(info.value.degradations) == 1


def test_work_cap_exhaustion_degrades_but_deadline_does_not():
    # Work caps are per attempt, so the ladder *advances* past a
    # work-capped rung; here every rung blows the cap, so the terminal
    # failure's provenance shows both rungs were tried.
    engine = sampled_engine()
    budget = EvaluationBudget(max_work_units=2)
    with pytest.raises(BudgetExceededError) as info:
        evaluate_with_policy(
            engine, QUERY, PDB, method="fpras", seed=4, budget=budget,
        )
    failure = info.value
    assert failure.kind == "work_units"
    assert len(failure.degradations) == 2
    assert failure.degradations[0].startswith("fpras:")
    assert failure.degradations[1].startswith("monte-carlo:")


def test_non_degradable_errors_raise_immediately():
    engine = PQEEngine()
    with pytest.raises(ReproError, match="unknown method"):
        evaluate_with_policy(engine, QUERY, PDB, method="not-a-method")


def test_engine_facade_evaluate_resilient():
    engine = sampled_engine(seed=11)
    with inject_faults(FaultSpec("counting.nfta", times=1)):
        answer = engine.evaluate_resilient(
            QUERY, PDB, method="fpras",
            policy=DegradationPolicy(max_retries=1),
        )
    assert answer.retries == 1
    assert answer.degraded
