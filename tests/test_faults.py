"""Deterministic fault injection across the whole pipeline.

The headline guarantee (the issue's acceptance criterion): a 16-item
batch with faults injected at 3 distinct pipeline sites returns 13
successful answers **bitwise-identical** to a fault-free run plus 3
structured error records — and the whole result is identical for worker
counts 1, 4 and 8.

Also covered: every named site in :data:`FAULT_SITES` is live, retries
recover transient faults deterministically, the reduction cache never
stores aborted builds, ``on_error='fail'`` preserves completed
siblings, and a stalled item cannot overrun its deadline beyond the
checkpoint granularity (the timeout smoke test).
"""

import pytest

from repro.core.cache import ReductionCache
from repro.core.estimator import PQEEngine
from repro.core.parallel import BatchError, BatchItem, evaluate_batch
from repro.db.delta import Delta, DeltaOp, VersionedDatabase
from repro.db.fact import Fact
from repro.db.instance import DatabaseInstance
from repro.db.probabilistic import ProbabilisticDatabase
from repro.errors import EstimationError, ReproError
from repro.graphs import Edge, ProbabilisticGraph
from repro.lineage.build import build_lineage
from repro.queries.parser import parse_query
from repro.testing import (
    FAULT_SITES,
    FaultPlan,
    FaultSpec,
    fault_point,
    fault_scope,
    inject_faults,
)

pytestmark = pytest.mark.faults

QUERY = parse_query("Q :- R1(x, y), R2(y, z)")
TRIANGLE = parse_query("Q :- R1(x, y), R2(y, z), R3(z, x)")

SMALL_PDB = ProbabilisticDatabase({
    Fact("R1", ("a", "b")): "1/2",
    Fact("R2", ("b", "c")): "2/3",
})

DIAMOND_PDB = ProbabilisticDatabase({
    Fact("R1", ("a", "b")): "1/2",
    Fact("R1", ("a", "c")): "2/3",
    Fact("R2", ("b", "d")): "3/4",
    Fact("R2", ("c", "d")): "2/5",
})

WIDTHS = (1, 4, 8)


def sampled_engine(seed=None):
    return PQEEngine(epsilon=0.5, exact_set_cap=0, seed=seed)


# ---------------------------------------------------------------------
# Harness basics
# ---------------------------------------------------------------------

def test_unknown_site_is_rejected():
    with pytest.raises(ReproError, match="unknown fault site"):
        FaultSpec("no.such.site")


def test_spec_validation():
    with pytest.raises(ReproError):
        FaultSpec("reduction.ur", after=-1)
    with pytest.raises(ReproError):
        FaultSpec("reduction.ur", times=0)
    with pytest.raises(ReproError):
        FaultSpec("reduction.ur", stall=-1.0)


def test_plans_do_not_nest():
    with inject_faults(FaultSpec("reduction.ur")):
        with pytest.raises(ReproError, match="already installed"):
            with inject_faults(FaultSpec("reduction.pqe")):
                pass  # pragma: no cover


def test_fault_point_is_a_noop_without_a_plan():
    fault_point("reduction.ur")  # must not raise


def test_scoped_specs_only_fire_in_their_scope():
    with inject_faults(FaultSpec("reduction.ur", scope=3)) as plan:
        with fault_scope(1):
            fault_point("reduction.ur")     # different scope: no fire
        with fault_scope(3):
            with pytest.raises(EstimationError, match="injected fault"):
                fault_point("reduction.ur")
        # Hits are only accounted within the spec's own scope.
        assert plan.hits("reduction.ur", 1) == 0
        assert plan.hits("reduction.ur", 3) == 1


def test_after_and_times_windows():
    plan = FaultPlan(FaultSpec("reduction.ur", after=1, times=1))
    assert plan.match("reduction.ur", None) is None       # hit 1: skipped
    assert plan.match("reduction.ur", None) is not None   # hit 2: fires
    assert plan.match("reduction.ur", None) is None       # hit 3: spent


# ---------------------------------------------------------------------
# Every named site is live
# ---------------------------------------------------------------------

# One production call path per site; each must pass through its
# fault_point, so a renamed or deleted site fails here loudly.
_INSTANCE = DatabaseInstance([Fact("R1", ("a", "b")), Fact("R2", ("b", "c"))])

SITE_TRIGGERS = {
    "decomposition.search": lambda: PQEEngine(seed=1).probability(
        TRIANGLE,
        ProbabilisticDatabase({
            Fact("R1", ("a", "b")): "1/2",
            Fact("R2", ("b", "c")): "1/2",
            Fact("R3", ("c", "a")): "1/2",
        }),
        method="fpras",
    ),
    "reduction.ur": lambda: PQEEngine(seed=1).uniform_reliability(
        QUERY, _INSTANCE, method="fpras"
    ),
    "reduction.pqe": lambda: PQEEngine(seed=1).probability(
        QUERY, SMALL_PDB, method="fpras"
    ),
    "lineage.build": lambda: build_lineage(QUERY, _INSTANCE),
    "lineage.karp_luby": lambda: PQEEngine(seed=1).probability(
        QUERY, SMALL_PDB, method="karp-luby"
    ),
    "counting.nfta": lambda: PQEEngine(seed=1).probability(
        QUERY, SMALL_PDB, method="fpras"
    ),
    "sampling.trees": lambda: __import__(
        "repro.core.sampling", fromlist=["sample_satisfying_subinstances"]
    ).sample_satisfying_subinstances(QUERY, _INSTANCE, k=1, seed=1),
    "monte_carlo.sample": lambda: PQEEngine(seed=1).probability(
        QUERY, SMALL_PDB, method="monte-carlo"
    ),
    "rpq.count": lambda: PQEEngine(seed=1).rpq_probability(
        ProbabilisticGraph.uniform(
            [Edge("s", "a", "m"), Edge("m", "b", "t")]
        ),
        "a b", source="s", target="t", method="exact",
    ),
    "serve.request": lambda: _served_request(),
    "db.delta": lambda: VersionedDatabase(SMALL_PDB).apply(
        Delta([DeltaOp.insert(Fact("R3", ("x", "y")), "1/2")])
    ),
}


def _served_request():
    """Drive a request through ``PQEServer.handle``, re-raising the
    serving-layer fault it contains (the daemon's contract is a
    structured 500 body, never a propagated exception)."""
    from repro.serve import PQEServer, ServerConfig

    server = PQEServer(SMALL_PDB, ServerConfig())
    status, body = server.handle(
        {"query": "Q :- R1(x, y), R2(y, z)", "method": "monte-carlo"}
    )
    if status == 500:
        raise EstimationError(body["error"]["message"])
    assert status == 200, body
    return body


def test_every_site_has_a_trigger():
    assert set(SITE_TRIGGERS) == set(FAULT_SITES)


@pytest.mark.parametrize("site", FAULT_SITES)
def test_injected_fault_surfaces_from_production_code(site):
    with inject_faults(FaultSpec(site)):
        with pytest.raises(EstimationError, match=f"injected fault at {site!r}"):
            SITE_TRIGGERS[site]()
    # The pipeline recovers completely once the plan is gone.
    SITE_TRIGGERS[site]()


# ---------------------------------------------------------------------
# The acceptance batch: 16 items, 3 faulted, any worker count
# ---------------------------------------------------------------------

FAULTED = {2: "counting.nfta", 5: "lineage.karp_luby", 10: "monte_carlo.sample"}


def acceptance_items():
    items = [
        BatchItem(QUERY, DIAMOND_PDB, method="fpras-weighted")
        for _ in range(16)
    ]
    items[5] = BatchItem(QUERY, DIAMOND_PDB, method="karp-luby")
    items[10] = BatchItem(QUERY, DIAMOND_PDB, method="monte-carlo")
    return items


def canon(batch):
    """The scheduling-independent projection of a batch result."""
    return [
        (
            r.index,
            r.ok,
            r.answer.value if r.ok else None,
            r.answer.method if r.ok else None,
            r.retries,
            (r.error.exception, r.error.message, r.error.phase)
            if r.error
            else None,
        )
        for r in batch.results
    ]


def test_faulted_batch_is_identical_across_worker_counts():
    engine = sampled_engine()
    items = acceptance_items()
    clean = evaluate_batch(engine, items, max_workers=4, seed=7)

    specs = [
        FaultSpec(site, scope=index) for index, site in FAULTED.items()
    ]
    with inject_faults(*specs):
        batches = [
            evaluate_batch(
                engine, items, max_workers=width, seed=7, on_error="skip"
            )
            for width in WIDTHS
        ]

    first = batches[0]
    # 13 successes, 3 structured error records.
    assert len(first.succeeded) == 13
    assert len(first.errors) == 3
    assert {r.index for r in first.errors} == set(FAULTED)
    for failed in first.errors:
        assert failed.answer is None
        assert failed.error.exception == "EstimationError"
        assert failed.error.message.startswith(
            f"injected fault at {FAULTED[failed.index]!r}"
        )
        assert failed.error.phase == FAULTED[failed.index]
    # Successes are bitwise-identical to the fault-free run …
    for r in first.succeeded:
        assert r.answer.value == clean.results[r.index].answer.value
        assert r.answer.method == clean.results[r.index].answer.method
    # … and the whole outcome is identical at every worker count.
    for batch in batches[1:]:
        assert canon(batch) == canon(first)


def test_retry_outcomes_are_identical_across_worker_counts():
    engine = sampled_engine()
    items = acceptance_items()[:6]
    outcomes = []
    for width in (1, 4):
        # Fresh plan per run: hit counts must start from zero each time.
        with inject_faults(FaultSpec("counting.nfta", scope=1, times=1)):
            outcomes.append(
                evaluate_batch(
                    engine, items, max_workers=width, seed=7,
                    on_error="skip", max_retries=1,
                )
            )
    assert canon(outcomes[0]) == canon(outcomes[1])
    recovered = outcomes[0].results[1]
    assert recovered.ok
    assert recovered.retries == 1


@pytest.mark.parametrize(
    "step,rolls_forward",
    [(0, False), (1, False), (2, True), (3, True)],
)
def test_delta_fault_matrix_across_worker_counts(step, rolls_forward):
    """The mutation path under injected faults, at workers 1/4/8.

    A delta apply killed at any of its four steps leaves the version
    head on exactly the old version (fault before the WAL commit,
    steps 1-2) or the new one (fault after it, steps 3-4) — never a
    hybrid — and a batch admitted afterwards pins that head and
    produces bitwise-identical answers at every worker count.  A
    pre-commit failure is retryable: re-applying the same delta
    converges on the same final state the roll-forward cases reach.
    """
    from fractions import Fraction

    engine = sampled_engine()
    outcomes = []
    for width in WIDTHS:
        vdb = VersionedDatabase(SMALL_PDB)
        reweight = Delta(
            [DeltaOp.reweight(Fact("R1", ("a", "b")), "3/4")]
        )
        with inject_faults(
            FaultSpec("db.delta", after=step, times=1)
        ):
            with pytest.raises(
                EstimationError, match="injected fault at 'db.delta'"
            ):
                vdb.apply(reweight)
            # Items pin the admission-time head via ``.pdb`` duck
            # typing — the batch sees one consistent version.
            items = [
                BatchItem(QUERY, vdb, method="fpras-weighted")
                for _ in range(8)
            ]
            batch = evaluate_batch(
                engine, items, max_workers=width, seed=11
            )
        assert vdb.version == (1 if rolls_forward else 0)
        if not rolls_forward:
            vdb.apply(reweight)  # the retry converges
        assert vdb.version == 1
        assert (
            vdb.pdb.probabilities[Fact("R1", ("a", "b"))]
            == Fraction(3, 4)
        )
        assert batch.ok
        outcomes.append(
            [
                (r.index, r.answer.value, r.answer.method)
                for r in batch.results
            ]
        )
    assert outcomes[0] == outcomes[1] == outcomes[2]


def test_degrade_mode_reroutes_faulted_items():
    engine = sampled_engine()
    items = acceptance_items()[:4]
    with inject_faults(FaultSpec("counting.nfta", scope=2)):
        batch = evaluate_batch(
            engine, items, max_workers=4, seed=7, on_error="degrade"
        )
    assert batch.ok
    rerouted = batch.results[2].answer
    assert rerouted.method == "monte-carlo"
    assert rerouted.degraded


# ---------------------------------------------------------------------
# Fail mode preserves siblings; the cache never stores aborted builds
# ---------------------------------------------------------------------

def test_fail_mode_preserves_completed_siblings():
    engine = sampled_engine()
    items = acceptance_items()[:4]
    clean = evaluate_batch(engine, items, max_workers=4, seed=7)
    with inject_faults(FaultSpec("counting.nfta", scope=1)):
        with pytest.raises(BatchError, match="batch item 1") as info:
            evaluate_batch(engine, items, max_workers=4, seed=7)
    partial = info.value.result
    assert info.value.index == 1
    assert isinstance(info.value.__cause__, EstimationError)
    assert len(partial.succeeded) == 3
    for r in partial.succeeded:
        assert r.answer.value == clean.results[r.index].answer.value
    assert partial.results[1].error.phase == "counting.nfta"


def test_aborted_builds_are_never_cached():
    cache = ReductionCache()
    engine = PQEEngine(epsilon=0.5, seed=3)
    item = [BatchItem(QUERY, SMALL_PDB, method="fpras")]
    # The first build attempt dies inside the cached builder; the retry
    # must rebuild from scratch (a second miss) and succeed.
    with inject_faults(FaultSpec("reduction.pqe", times=1)):
        batch = evaluate_batch(
            engine, item, max_workers=1, seed=3, cache=cache,
            max_retries=1, on_error="skip",
        )
    assert batch.ok
    assert batch.results[0].retries == 1
    clean = evaluate_batch(engine, item, max_workers=1, seed=3)
    assert batch.values == clean.values
    # Nothing half-built leaked: a fresh evaluation over the same cache
    # hits the (complete) entries stored by the successful retry.
    warm = evaluate_batch(engine, item, max_workers=1, seed=3, cache=cache)
    assert warm.values == clean.values
    assert warm.cache_stats.misses == 0


# ---------------------------------------------------------------------
# Timeout smoke: a stalled item cannot overrun its deadline
# ---------------------------------------------------------------------

def test_stalled_item_is_cut_off_at_the_deadline():
    engine = sampled_engine()
    items = [
        BatchItem(QUERY, DIAMOND_PDB, method="fpras-weighted"),
        BatchItem(QUERY, DIAMOND_PDB, method="fpras-weighted"),
    ]
    with inject_faults(FaultSpec("counting.nfta", scope=1, stall=30.0)):
        batch = evaluate_batch(
            engine, items, max_workers=2, seed=7,
            timeout=0.25, on_error="skip",
        )
    assert batch.results[0].ok
    stalled = batch.results[1]
    assert not stalled.ok
    assert stalled.error.exception == "BudgetExceededError"
    assert stalled.error.phase == "counting.nfta"
    # The 30s stall was cut off within the checkpoint granularity.
    assert stalled.elapsed < 2.0
    assert stalled.error.budget is not None
    assert stalled.error.budget.deadline == 0.25
