"""End-to-end integration tests: the paper's headline claims in small.

These chain every subsystem — query parsing, decomposition, the
Proposition 1 / Theorem 1 reductions, the counting FPRAS, the lineage
baselines, and the engine — on scenarios drawn from the paper.
"""

import pytest

from repro import (
    PQEEngine,
    ProbabilisticDatabase,
    exact_probability,
    exact_uniform_reliability,
    parse_query,
    path_estimate,
    path_query,
    pqe_estimate,
    ur_estimate,
)
from repro.core.ur_reduction import build_ur_reduction
from repro.core.path_estimate import build_path_nfa
from repro.automata.nfta_counting import count_nfta_exact
from repro.lineage.build import lineage_clause_count
from repro.queries.properties import is_hierarchical
from repro.workloads.graphs import (
    complete_layered_path_instance,
    layered_path_instance,
)
from repro.workloads.instances import random_probabilities


class TestCorollary1Story:
    """The 3Path class: #P-hard in data complexity, easy to approximate."""

    def test_members_are_nonhierarchical_hence_sharp_p_hard(self):
        for i in range(3, 8):
            assert not is_hierarchical(path_query(i))

    def test_lineage_grows_with_query_length(self):
        # Θ(|D|^i) clauses on complete layered instances.
        counts = [
            lineage_clause_count(
                path_query(i), complete_layered_path_instance(i, 2)
            )
            for i in (2, 3, 4)
        ]
        assert counts == [8, 16, 32]  # 2^(i+1)

    def test_automaton_stays_polynomial(self):
        transitions = []
        for i in (2, 4, 6, 8):
            query = path_query(i)
            instance = complete_layered_path_instance(i, 2)
            reduction = build_path_nfa(query, instance)
            transitions.append(reduction.nfa.num_transitions)
        # Linear-ish in i here; definitely not doubling each step.
        ratios = [b / a for a, b in zip(transitions, transitions[1:])]
        assert all(r < 3 for r in ratios)

    def test_fpras_approximates_a_3path_member(self):
        query = path_query(3)
        instance = layered_path_instance(3, 2, 0.8, seed=13)
        truth = exact_uniform_reliability(query, instance, method="lineage")
        result = ur_estimate(
            query, instance, epsilon=0.2, seed=0, repetitions=3
        )
        assert abs(result.estimate - truth) / truth < 0.4


class TestWarmupVsGeneralConstruction:
    """Theorem 2's NFA and Proposition 1's NFTA must agree on paths."""

    @pytest.mark.parametrize("seed", range(4))
    def test_nfa_and_nfta_counts_agree(self, seed):
        query = path_query(2)
        instance = layered_path_instance(2, 2, 0.7, seed=seed)
        nfa_reduction = build_path_nfa(query, instance)
        nfa_count = nfa_reduction.nfa.count_exact(
            nfa_reduction.string_length
        )
        nfta_reduction = build_ur_reduction(query, instance)
        nfta_count = count_nfta_exact(
            nfta_reduction.nfta, nfta_reduction.tree_size
        )
        assert nfa_count == nfta_count


class TestFullPipeline:
    def test_quickstart_example(self):
        from repro import Fact

        q = parse_query("Q :- R1(x, y), R2(y, z), R3(z, w)")
        h = ProbabilisticDatabase(
            {
                Fact("R1", ("a", "b")): "1/2",
                Fact("R2", ("b", "c")): "2/3",
                Fact("R3", ("c", "d")): "3/4",
            }
        )
        result = pqe_estimate(q, h, epsilon=0.1, seed=0)
        assert result.estimate == pytest.approx(0.25, rel=0.2)

    def test_three_evaluators_agree_end_to_end(self):
        query = path_query(3)
        instance = layered_path_instance(3, 2, 0.6, seed=21)
        pdb = random_probabilities(instance, seed=22, max_denominator=4)
        truth = float(exact_probability(query, pdb, method="lineage"))
        automaton = pqe_estimate(query, pdb, method="exact-automaton")
        assert automaton.estimate == pytest.approx(truth, rel=1e-9)
        engine = PQEEngine(seed=3, epsilon=0.2, repetitions=3)
        fpras = engine.probability(query, pdb, method="fpras")
        assert fpras.value == pytest.approx(truth, rel=0.4, abs=0.02)

    def test_table1_row_consistency(self):
        """Safe and unsafe SJF rows produce consistent answers across
        their designated methods."""
        engine = PQEEngine(seed=0)

        # Row 1: bounded HW + SJF + safe: FP exactly AND FPRAS.
        from repro.queries.builders import star_query

        safe_q = star_query(2)
        instance = layered_path_instance(2, 2, 0.7, seed=30)
        pdb = random_probabilities(
            instance.project_to_query(safe_q), seed=31
        )
        if len(pdb) >= 2:
            safe_exact = engine.probability(safe_q, pdb, method="safe-plan")
            brute = engine.probability(safe_q, pdb, method="enumerate")
            assert safe_exact.rational == brute.rational

        # Row 2: bounded HW + SJF + unsafe: the paper's new FPRAS cell.
        unsafe_q = path_query(3)
        instance = layered_path_instance(3, 2, 0.7, seed=32)
        pdb = random_probabilities(instance, seed=33, max_denominator=3)
        truth = float(exact_probability(unsafe_q, pdb, method="lineage"))
        fpras = pqe_estimate(
            unsafe_q, pdb, epsilon=0.2, seed=34, repetitions=3
        )
        assert fpras.estimate == pytest.approx(truth, rel=0.4, abs=0.02)
