"""Tests for the batch write-ahead journal (repro.core.journal).

Covers the record format (checksummed JSONL), the longest-valid-prefix
loader with tail quarantine, fingerprint binding, and the resume path
through ``evaluate_batch``/``resume_batch``: a resumed batch restores
completed answers bitwise, recomputes error records, and reports the
same replay-stable counters as an uninterrupted run.
"""

import json
import warnings

import pytest

from repro.core.estimator import PQEEngine
from repro.core.journal import (
    JOURNAL_VERSION,
    BatchJournal,
    JournalWarning,
    batch_fingerprint,
    check_fingerprint,
    load_journal,
)
from repro.core.parallel import BatchItem
from repro.db.fact import Fact
from repro.db.probabilistic import ProbabilisticDatabase
from repro.errors import JournalError, ReproError
from repro.queries import parse_query
from repro.testing.faults import flip_bit, truncate_tail


def _pdb(shift: int = 0) -> ProbabilisticDatabase:
    labels = {}
    for i in range(3):
        labels[Fact("R", (f"a{i + shift}", f"b{i}"))] = "1/2"
        labels[Fact("S", (f"b{i}", f"c{i}"))] = "2/3"
    return ProbabilisticDatabase(labels)


@pytest.fixture
def rs_items(rs_query):
    return [
        BatchItem(rs_query, _pdb(shift), method="fpras")
        for shift in range(4)
    ]


@pytest.fixture
def engine():
    return PQEEngine(seed=11)


class TestRecordFormat:
    def test_every_line_is_checksummed_json(self, tmp_path, engine, rs_items):
        path = tmp_path / "batch.jsonl"
        engine.evaluate_batch(rs_items, seed=11, journal=path)
        lines = path.read_text().splitlines()
        assert len(lines) == 1 + len(rs_items)  # header + one per item
        for line in lines:
            record = json.loads(line)
            assert "checksum" in record
        header = json.loads(lines[0])
        assert header["type"] == "header"
        assert header["version"] == JOURNAL_VERSION
        assert header["items"] == len(rs_items)

    def test_loader_round_trip(self, tmp_path, engine, rs_items):
        path = tmp_path / "batch.jsonl"
        fresh = engine.evaluate_batch(rs_items, seed=11, journal=path)
        loaded = load_journal(path)
        assert loaded.quarantined == 0
        assert sorted(loaded.completed()) == [0, 1, 2, 3]
        for index in range(len(rs_items)):
            restored = loaded.restore_result(index)
            assert restored.replayed
            assert restored.answer == fresh.results[index].answer
            assert restored.seed == fresh.results[index].seed

    def test_exact_fraction_survives_round_trip(self, tmp_path, engine):
        # lineage-exact answers carry a Fraction; the "num/den" string
        # representation must restore it bitwise.
        items = [BatchItem(parse_query("Q :- R(x, y), S(y, z)"), _pdb(),
                           method="lineage-exact")]
        path = tmp_path / "exact.jsonl"
        fresh = engine.evaluate_batch(items, seed=11, journal=path)
        restored = load_journal(path).restore_result(0)
        assert restored.answer.rational == fresh.results[0].answer.rational
        assert restored.answer.value == fresh.results[0].answer.value
        assert restored.answer.exact

    def test_missing_file_loads_empty(self, tmp_path):
        loaded = load_journal(tmp_path / "never-written.jsonl")
        assert loaded.header is None
        assert loaded.items == {}

    def test_error_records_are_not_replayed(self, tmp_path):
        from repro.core.parallel import BatchItemError, BatchItemResult

        path = tmp_path / "errors.jsonl"
        with BatchJournal(path) as journal:
            journal.write_header("fp", 7, 1)
            journal.record_item(
                BatchItemResult(
                    index=0,
                    answer=None,
                    seed=123,
                    elapsed=0.5,
                    error=BatchItemError(
                        exception="EstimationError",
                        message="boom",
                        phase="counting.nfta",
                        elapsed=0.5,
                        retries=2,
                        budget=None,
                    ),
                )
            )
        loaded = load_journal(path)
        assert 0 in loaded.items          # recorded ...
        assert loaded.completed() == {}   # ... but never replayed


class TestTailQuarantine:
    def _journal(self, tmp_path, engine, rs_items):
        path = tmp_path / "batch.jsonl"
        engine.evaluate_batch(rs_items, seed=11, journal=path)
        return path

    def test_torn_tail_keeps_valid_prefix(self, tmp_path, engine, rs_items):
        path = self._journal(tmp_path, engine, rs_items)
        truncate_tail(path, drop_bytes=10)
        with pytest.warns(JournalWarning, match=str(path.name)):
            loaded = load_journal(path)
        assert loaded.quarantined == 1
        assert len(loaded.completed()) == len(rs_items) - 1

    def test_bit_flip_quarantines_line_and_tail(
        self, tmp_path, engine, rs_items
    ):
        path = self._journal(tmp_path, engine, rs_items)
        lines = path.read_text().splitlines()
        # Damage the second line (first item record): it and everything
        # after are untrusted; the header survives.
        offset = len(lines[0]) + 1 + len(lines[1]) // 2
        flip_bit(path, offset=offset, bit=4)
        with pytest.warns(JournalWarning):
            loaded = load_journal(path)
        assert loaded.header is not None
        assert loaded.quarantined == len(rs_items)
        assert len(loaded.completed()) == 0

    def test_trailing_garbage(self, tmp_path, engine, rs_items):
        path = self._journal(tmp_path, engine, rs_items)
        with open(path, "a") as stream:
            stream.write("not json at all\n")
        with pytest.warns(JournalWarning, match="line 6"):
            loaded = load_journal(path)
        assert len(loaded.completed()) == len(rs_items)

    def test_quarantine_never_raises_on_empty_file(self, tmp_path):
        path = tmp_path / "empty.jsonl"
        path.write_text("")
        loaded = load_journal(path)
        assert loaded.items == {}

    def test_foreign_version_header_is_quarantined(self, tmp_path):
        path = tmp_path / "future.jsonl"
        with BatchJournal(path) as journal:
            journal._append(
                {"type": "header", "version": JOURNAL_VERSION + 1,
                 "fingerprint": "fp", "seed": 7, "items": 1}
            )
        with pytest.warns(JournalWarning):
            loaded = load_journal(path)
        assert loaded.header is None


class TestFingerprint:
    def test_binds_seed_items_and_engine(self, engine, rs_items):
        base = batch_fingerprint(rs_items, 11, engine)
        assert batch_fingerprint(rs_items, 11, engine) == base
        assert batch_fingerprint(rs_items, 12, engine) != base
        assert batch_fingerprint(rs_items[:-1], 11, engine) != base
        other_engine = PQEEngine(seed=11, epsilon=0.5)
        assert batch_fingerprint(rs_items, 11, other_engine) != base

    def test_mismatch_refuses_resume(self, tmp_path, engine, rs_items):
        path = tmp_path / "batch.jsonl"
        engine.evaluate_batch(rs_items, seed=11, journal=path)
        with pytest.raises(JournalError, match="different batch"):
            check_fingerprint(load_journal(path), "0" * 64, path)

    def test_resume_with_different_seed_raises(
        self, tmp_path, engine, rs_items
    ):
        path = tmp_path / "batch.jsonl"
        engine.evaluate_batch(rs_items, seed=11, journal=path)
        with pytest.raises(JournalError):
            engine.resume_batch(rs_items, seed=99, journal=path)

    def test_headerless_journal_resumes_fresh(self, tmp_path):
        check_fingerprint(
            load_journal(tmp_path / "absent.jsonl"), "fp", "absent"
        )  # nothing recorded → nothing to contradict


class TestResume:
    def test_resume_requires_journal(self, engine, rs_items):
        with pytest.raises(ReproError, match="requires a journal"):
            engine.evaluate_batch(rs_items, seed=11, resume=True)

    def test_full_journal_replays_everything(
        self, tmp_path, engine, rs_items
    ):
        path = tmp_path / "batch.jsonl"
        fresh = engine.evaluate_batch(rs_items, seed=11, journal=path)
        resumed = engine.resume_batch(rs_items, seed=11, journal=path)
        assert all(r.replayed for r in resumed.results)
        assert resumed.values == fresh.values
        assert [r.seed for r in resumed.results] == [
            r.seed for r in fresh.results
        ]

    def test_partial_journal_computes_remainder(
        self, tmp_path, engine, rs_items
    ):
        path = tmp_path / "batch.jsonl"
        fresh = engine.evaluate_batch(rs_items, seed=11, journal=path)
        # Tear off the last item's record — as a crash would have.
        lines = path.read_text().splitlines()
        path.write_text("\n".join(lines[:-1]) + "\n")
        resumed = engine.resume_batch(rs_items, seed=11, journal=path)
        assert [r.replayed for r in resumed.results] == [
            True, True, True, False
        ]
        assert resumed.values == fresh.values

    def test_resumed_replay_stable_counters_match(
        self, tmp_path, engine, rs_items
    ):
        path = tmp_path / "batch.jsonl"
        engine.evaluate_batch(
            rs_items, seed=11, journal=path, telemetry=True
        )
        lines = path.read_text().splitlines()
        path.write_text("\n".join(lines[:3]) + "\n")  # keep 2 of 4 items
        resumed = engine.resume_batch(
            rs_items, seed=11, journal=path, telemetry=True
        )
        clean = engine.evaluate_batch(rs_items, seed=11, telemetry=True)
        assert (
            resumed.telemetry.metrics.replay_stable_counters()
            == clean.telemetry.metrics.replay_stable_counters()
        )

    def test_resume_after_torn_tail(self, tmp_path, engine, rs_items):
        path = tmp_path / "batch.jsonl"
        fresh = engine.evaluate_batch(rs_items, seed=11, journal=path)
        truncate_tail(path, drop_bytes=25)
        with pytest.warns(JournalWarning):
            resumed = engine.resume_batch(rs_items, seed=11, journal=path)
        assert resumed.values == fresh.values

    def test_resumed_run_re_records_computed_items(
        self, tmp_path, engine, rs_items
    ):
        path = tmp_path / "batch.jsonl"
        engine.evaluate_batch(rs_items, seed=11, journal=path)
        lines = path.read_text().splitlines()
        path.write_text("\n".join(lines[:-1]) + "\n")
        engine.resume_batch(rs_items, seed=11, journal=path)
        # The recomputed item was appended, so a second resume replays
        # the whole batch.
        second = engine.resume_batch(rs_items, seed=11, journal=path)
        assert all(r.replayed for r in second.results)
