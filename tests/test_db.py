"""Unit tests for schema, facts, and database instances."""

import pytest

from repro.db.fact import Fact
from repro.db.instance import DatabaseInstance
from repro.db.schema import RelationSymbol, Schema
from repro.errors import SchemaError
from repro.queries.parser import parse_query


class TestRelationSymbol:
    def test_str(self):
        assert str(RelationSymbol("R", 2)) == "R/2"

    def test_invalid_arity(self):
        with pytest.raises(SchemaError):
            RelationSymbol("R", 0)

    def test_empty_name(self):
        with pytest.raises(SchemaError):
            RelationSymbol("", 1)


class TestSchema:
    def test_lookup(self):
        s = Schema([RelationSymbol("R", 2), RelationSymbol("S", 1)])
        assert s.arity_of("R") == 2
        assert "S" in s
        assert "T" not in s

    def test_unknown_relation(self):
        with pytest.raises(SchemaError):
            Schema([]).arity_of("R")

    def test_conflicting_arities(self):
        with pytest.raises(SchemaError):
            Schema([RelationSymbol("R", 2), RelationSymbol("R", 3)])

    def test_from_query(self):
        s = Schema.from_query(parse_query("R(x, y), S(y)"))
        assert s.arity_of("R") == 2
        assert s.arity_of("S") == 1

    def test_equality(self):
        a = Schema([RelationSymbol("R", 2)])
        b = Schema([RelationSymbol("R", 2)])
        assert a == b
        assert hash(a) == hash(b)


class TestFact:
    def test_str(self):
        assert str(Fact("R", ("a", "b"))) == "R(a, b)"

    def test_arity(self):
        assert Fact("R", (1, 2, 3)).arity == 3

    def test_hashable(self):
        assert len({Fact("R", ("a",)), Fact("R", ("a",))}) == 1

    def test_empty_constants_rejected(self):
        with pytest.raises(SchemaError):
            Fact("R", ())

    def test_sort_key_total_order_over_mixed_types(self):
        facts = [Fact("R", (1, "a")), Fact("R", ("b", 2))]
        assert sorted(facts, key=Fact.sort_key)  # must not raise


class TestDatabaseInstance:
    def test_set_semantics(self):
        d = DatabaseInstance([Fact("R", ("a",)), Fact("R", ("a",))])
        assert len(d) == 1

    def test_relation_index_sorted(self):
        d = DatabaseInstance(
            [Fact("R", ("b", "x")), Fact("R", ("a", "x")), Fact("S", ("q",))]
        )
        facts = d.facts_for_relation("R")
        assert [f.constants[0] for f in facts] == ["a", "b"]

    def test_missing_relation_empty(self):
        assert DatabaseInstance([Fact("R", ("a",))]).facts_for_relation("T") == ()

    def test_schema_inference_conflict(self):
        with pytest.raises(SchemaError):
            DatabaseInstance([Fact("R", ("a",)), Fact("R", ("a", "b"))])

    def test_explicit_schema_validation(self):
        schema = Schema([RelationSymbol("R", 1)])
        with pytest.raises(SchemaError):
            DatabaseInstance([Fact("R", ("a", "b"))], schema=schema)
        with pytest.raises(SchemaError):
            DatabaseInstance([Fact("S", ("a",))], schema=schema)

    def test_active_domain(self):
        d = DatabaseInstance([Fact("R", ("a", "b")), Fact("S", ("b", "c"))])
        assert d.active_domain == frozenset({"a", "b", "c"})

    def test_project_to_query(self):
        d = DatabaseInstance(
            [Fact("R", ("a", "b")), Fact("T", ("z",))]
        )
        projected = d.project_to_query(parse_query("R(x, y)"))
        assert len(projected) == 1
        assert projected.relation_names == frozenset({"R"})

    def test_subinstance_count(self):
        d = DatabaseInstance([Fact("R", (i,)) for i in range(4)])
        subs = list(d.subinstances())
        assert len(subs) == 16
        assert len(set(subs)) == 16
        assert frozenset() in subs
        assert d.facts in subs

    def test_with_without_facts(self):
        d = DatabaseInstance([Fact("R", ("a",))])
        d2 = d.with_facts([Fact("R", ("b",))])
        assert len(d2) == 2 and len(d) == 1
        d3 = d2.without_facts([Fact("R", ("a",))])
        assert d3.facts == frozenset({Fact("R", ("b",))})

    def test_equality_and_hash(self):
        a = DatabaseInstance([Fact("R", ("a",))])
        b = DatabaseInstance([Fact("R", ("a",))])
        assert a == b and hash(a) == hash(b)

    def test_iteration_deterministic(self):
        d = DatabaseInstance(
            [Fact("R", ("b",)), Fact("R", ("a",)), Fact("Q", ("z",))]
        )
        assert [str(f) for f in d] == [str(f) for f in d]
