"""Tests for process-isolated batch execution (repro.core.procpool).

Two contracts: (1) results are bitwise-identical to the thread backend
— same answers, same derived seeds, same replay-stable counters — and
(2) a worker that dies without reporting (``os._exit``, ``SIGKILL``,
watchdog kill) becomes a structured :class:`WorkerCrashError` record
for exactly the item it was evaluating, while the batch continues.
"""

import multiprocessing
import time

import pytest

from repro.core.cache import ReductionCache
from repro.core.estimator import PQEEngine
from repro.core.parallel import (
    BatchError,
    BatchItem,
    BatchItemResult,
    derive_item_seed,
)
from repro.core.procpool import run_process_batch
from repro.db.fact import Fact
from repro.db.probabilistic import ProbabilisticDatabase
from repro.errors import ReproError, WorkerCrashError
from repro.testing.faults import FaultSpec, inject_faults

pytestmark = pytest.mark.skipif(
    "fork" not in multiprocessing.get_all_start_methods(),
    reason="process isolation requires the fork start method",
)


def _pdb(shift: int = 0) -> ProbabilisticDatabase:
    labels = {}
    for i in range(3):
        labels[Fact("R", (f"a{i + shift}", f"b{i}"))] = "1/2"
        labels[Fact("S", (f"b{i}", f"c{i}"))] = "2/3"
    return ProbabilisticDatabase(labels)


@pytest.fixture
def items(rs_query):
    return [
        BatchItem(rs_query, _pdb(shift), method="fpras")
        for shift in range(6)
    ]


@pytest.fixture
def engine():
    return PQEEngine(seed=5)


class TestBackendIdentity:
    @pytest.mark.parametrize("workers", [1, 3])
    def test_bitwise_identical_to_thread_backend(
        self, engine, items, workers
    ):
        threaded = engine.evaluate_batch(items, seed=5, max_workers=workers)
        isolated = engine.evaluate_batch(
            items, seed=5, max_workers=workers, isolation="process"
        )
        assert isolated.values == threaded.values
        assert isolated.methods == threaded.methods
        assert [r.seed for r in isolated.results] == [
            r.seed for r in threaded.results
        ]

    def test_replay_stable_counters_match_thread_backend(
        self, engine, items
    ):
        threaded = engine.evaluate_batch(
            items, seed=5, max_workers=2, telemetry=True
        )
        isolated = engine.evaluate_batch(
            items, seed=5, max_workers=2, isolation="process",
            telemetry=True,
        )
        assert (
            isolated.telemetry.metrics.replay_stable_counters()
            == threaded.telemetry.metrics.replay_stable_counters()
        )

    def test_spans_cross_the_process_boundary(self, engine, items):
        isolated = engine.evaluate_batch(
            items[:2], seed=5, isolation="process", telemetry=True
        )
        names = {r.name for r in isolated.telemetry.tracer.records}
        assert "item" in names

    def test_unknown_isolation_rejected(self, engine, items):
        with pytest.raises(ReproError, match="isolation"):
            engine.evaluate_batch(items, seed=5, isolation="fiber")

    def test_memory_limit_requires_process_isolation(self, engine, items):
        with pytest.raises(ReproError, match="memory_limit"):
            engine.evaluate_batch(items, seed=5, memory_limit=1 << 30)


@pytest.mark.faults
class TestCrashContainment:
    def test_exit_crash_becomes_structured_record(self, engine, items):
        with inject_faults(
            FaultSpec("counting.nfta", scope=0, crash="exit")
        ):
            batch = engine.evaluate_batch(
                items, seed=5, max_workers=2, isolation="process",
                on_error="skip",
            )
        crashed = batch.results[0]
        assert not crashed.ok
        assert crashed.error.exception == "WorkerCrashError"
        assert "exit code 134" in crashed.error.message
        assert crashed.seed == derive_item_seed(5, 0)
        assert all(r.ok for r in batch.results[1:])

    def test_sigkill_crash_is_contained(self, engine, items):
        with inject_faults(
            FaultSpec("counting.nfta", scope=0, crash="sigkill")
        ):
            batch = engine.evaluate_batch(
                items, seed=5, max_workers=2, isolation="process",
                on_error="skip",
            )
        crashed = batch.results[0]
        assert not crashed.ok
        assert "exit code -9" in crashed.error.message
        assert len(batch.succeeded) == len(items) - 1

    def test_crash_under_on_error_fail_keeps_sibling_answers(
        self, engine, items
    ):
        with inject_faults(
            FaultSpec("counting.nfta", scope=0, crash="exit")
        ):
            with pytest.raises(BatchError) as failure:
                engine.evaluate_batch(
                    items, seed=5, max_workers=2, isolation="process"
                )
        assert isinstance(failure.value.__cause__, WorkerCrashError)
        assert failure.value.index == 0
        assert len(failure.value.result.succeeded) == len(items) - 1

    def test_crash_is_never_retried(self, engine, items):
        # WorkerCrashError is not an EstimationError: retry budgets must
        # not be spent re-running an item that kills its worker.
        with inject_faults(
            FaultSpec("counting.nfta", scope=0, crash="exit")
        ):
            batch = engine.evaluate_batch(
                items, seed=5, max_workers=2, isolation="process",
                on_error="skip", max_retries=2,
            )
        assert not batch.results[0].ok
        assert batch.results[0].retries == 0

    def test_surviving_siblings_match_crash_free_run(self, engine, items):
        clean = engine.evaluate_batch(items, seed=5, max_workers=2)
        with inject_faults(
            FaultSpec("counting.nfta", scope=0, crash="exit")
        ):
            crashed = engine.evaluate_batch(
                items, seed=5, max_workers=2, isolation="process",
                on_error="skip",
            )
        for index in range(1, len(items)):
            assert (
                crashed.results[index].answer.value
                == clean.results[index].answer.value
            )


class _WedgedRunner:
    """A runner whose item blocks uncooperatively — watchdog bait."""

    def __init__(self):
        self.seed = 5
        self.cache = ReductionCache()
        self.causes = {}

    def run(self, index: int) -> BatchItemResult:
        time.sleep(30)  # no budget checkpoints fire in here
        return BatchItemResult(
            index=index, answer=None, seed=None, elapsed=30.0
        )


class _HungryRunner:
    """A runner whose item allocates far beyond any sane cap."""

    def __init__(self):
        self.seed = 5
        self.cache = ReductionCache()
        self.causes = {}

    def run(self, index: int) -> BatchItemResult:
        from repro.core.parallel import _error_record

        started = time.perf_counter()
        try:
            hog = bytearray(32 << 30)  # 32 GiB: must hit RLIMIT_AS
            return BatchItemResult(
                index=index, answer=len(hog), seed=None, elapsed=0.0
            )
        except MemoryError as failure:
            elapsed = time.perf_counter() - started
            return BatchItemResult(
                index=index,
                answer=None,
                seed=None,
                elapsed=elapsed,
                error=_error_record(failure, elapsed, 0, None),
            )


@pytest.mark.faults
class TestSupervisor:
    def test_watchdog_kills_wedged_worker(self):
        runner = _WedgedRunner()
        started = time.perf_counter()
        computed, _ = run_process_batch(
            runner, [0], max_workers=1, timeout=0.2
        )
        elapsed = time.perf_counter() - started
        assert elapsed < 10  # killed by the watchdog, not the sleep
        assert not computed[0].ok
        assert "watchdog timeout" in computed[0].error.message

    def test_memory_cap_degrades_to_memory_error(self):
        # The cap turns an OOM kill (host-fatal) into a recoverable
        # in-worker MemoryError record.
        computed, _ = run_process_batch(
            _HungryRunner(), [0], max_workers=1, memory_limit=4 << 30
        )
        assert not computed[0].ok
        assert computed[0].error.exception == "MemoryError"

    def test_on_settled_sees_every_item_once(self, engine, items):
        from repro.core.parallel import ItemRunner
        from repro.core.resilience import DegradationPolicy

        seen = []
        runner = ItemRunner(
            engine, [item.validated(i) for i, item in enumerate(items)],
            seed=5, cache=ReductionCache(), item_budget=None,
            policy=DegradationPolicy(), on_error="skip", telemetry=False,
        )

        def settle(result):
            seen.append(result.index)
            return result

        computed, stats = run_process_batch(
            runner, list(range(len(items))), max_workers=2,
            on_settled=settle,
        )
        assert sorted(seen) == list(range(len(items)))
        assert sorted(computed) == list(range(len(items)))
        assert stats.misses >= 1  # per-worker traffic was accumulated
