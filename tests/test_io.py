"""Tests for serialisation (JSON / CSV / query text round-trips)."""

import io

import pytest

from repro.db.fact import Fact
from repro.db.probabilistic import ProbabilisticDatabase
from repro.errors import ReproError
from repro.io import (
    dump_pdb_csv,
    dump_pdb_json,
    dump_query,
    load_pdb,
    load_pdb_csv,
    load_pdb_json,
    load_query,
    save_pdb,
)
from repro.queries.builders import path_query


def _pdb() -> ProbabilisticDatabase:
    return ProbabilisticDatabase(
        {
            Fact("R1", ("a", "b")): "1/2",
            Fact("R2", ("b", "c")): "997/1000",
            Fact("U", ("x",)): "1",
        }
    )


class TestJsonRoundTrip:
    def test_round_trip(self):
        original = _pdb()
        buffer = io.StringIO()
        dump_pdb_json(original, buffer)
        buffer.seek(0)
        loaded = load_pdb_json(buffer)
        assert loaded == original

    def test_probabilities_exact(self):
        buffer = io.StringIO()
        dump_pdb_json(_pdb(), buffer)
        buffer.seek(0)
        loaded = load_pdb_json(buffer)
        fact = Fact("R2", ("b", "c"))
        assert loaded.probability(fact).denominator == 1000

    def test_invalid_json(self):
        with pytest.raises(ReproError):
            load_pdb_json(io.StringIO("not json"))

    def test_wrong_shape(self):
        with pytest.raises(ReproError):
            load_pdb_json(io.StringIO('{"rows": []}'))

    def test_malformed_entry(self):
        with pytest.raises(ReproError):
            load_pdb_json(
                io.StringIO('{"facts": [{"relation": "R"}]}')
            )

    def test_duplicate_fact(self):
        text = (
            '{"facts": ['
            '{"relation": "R", "constants": ["a"], "probability": "1/2"},'
            '{"relation": "R", "constants": ["a"], "probability": "1/3"}'
            "]}"
        )
        with pytest.raises(ReproError):
            load_pdb_json(io.StringIO(text))

    def test_empty(self):
        with pytest.raises(ReproError):
            load_pdb_json(io.StringIO('{"facts": []}'))


class TestCsvRoundTrip:
    def test_round_trip(self):
        original = _pdb()
        buffer = io.StringIO()
        dump_pdb_csv(original, buffer)
        buffer.seek(0)
        loaded = load_pdb_csv(buffer)
        assert loaded == original


class TestPathBased:
    def test_json_file(self, tmp_path):
        path = tmp_path / "db.json"
        save_pdb(_pdb(), path)
        assert load_pdb(path) == _pdb()

    def test_csv_file(self, tmp_path):
        path = tmp_path / "db.csv"
        save_pdb(_pdb(), path)
        assert load_pdb(path) == _pdb()

    def test_unknown_extension(self, tmp_path):
        with pytest.raises(ReproError):
            save_pdb(_pdb(), tmp_path / "db.xml")
        with pytest.raises(ReproError):
            load_pdb(tmp_path / "db.xml")


class TestQueryRoundTrip:
    def test_round_trip(self):
        query = path_query(3)
        buffer = io.StringIO()
        dump_query(query, buffer)
        buffer.seek(0)
        assert load_query(buffer) == query
