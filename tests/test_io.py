"""Tests for serialisation (JSON / CSV / query text round-trips)."""

import io

import pytest

from repro.db.fact import Fact
from repro.db.probabilistic import ProbabilisticDatabase
from repro.errors import ContextualError, ReproError
from repro.io import (
    dump_pdb_csv,
    dump_pdb_json,
    dump_query,
    load_pdb,
    load_pdb_csv,
    load_pdb_json,
    load_query,
    save_pdb,
)
from repro.queries.builders import path_query


def _pdb() -> ProbabilisticDatabase:
    return ProbabilisticDatabase(
        {
            Fact("R1", ("a", "b")): "1/2",
            Fact("R2", ("b", "c")): "997/1000",
            Fact("U", ("x",)): "1",
        }
    )


class TestJsonRoundTrip:
    def test_round_trip(self):
        original = _pdb()
        buffer = io.StringIO()
        dump_pdb_json(original, buffer)
        buffer.seek(0)
        loaded = load_pdb_json(buffer)
        assert loaded == original

    def test_probabilities_exact(self):
        buffer = io.StringIO()
        dump_pdb_json(_pdb(), buffer)
        buffer.seek(0)
        loaded = load_pdb_json(buffer)
        fact = Fact("R2", ("b", "c"))
        assert loaded.probability(fact).denominator == 1000

    def test_invalid_json(self):
        with pytest.raises(ReproError):
            load_pdb_json(io.StringIO("not json"))

    def test_wrong_shape(self):
        with pytest.raises(ReproError):
            load_pdb_json(io.StringIO('{"rows": []}'))

    def test_malformed_entry(self):
        with pytest.raises(ReproError):
            load_pdb_json(
                io.StringIO('{"facts": [{"relation": "R"}]}')
            )

    def test_duplicate_fact(self):
        text = (
            '{"facts": ['
            '{"relation": "R", "constants": ["a"], "probability": "1/2"},'
            '{"relation": "R", "constants": ["a"], "probability": "1/3"}'
            "]}"
        )
        with pytest.raises(ReproError):
            load_pdb_json(io.StringIO(text))

    def test_empty(self):
        with pytest.raises(ReproError):
            load_pdb_json(io.StringIO('{"facts": []}'))


class TestCsvRoundTrip:
    def test_round_trip(self):
        original = _pdb()
        buffer = io.StringIO()
        dump_pdb_csv(original, buffer)
        buffer.seek(0)
        loaded = load_pdb_csv(buffer)
        assert loaded == original


class TestPathBased:
    def test_json_file(self, tmp_path):
        path = tmp_path / "db.json"
        save_pdb(_pdb(), path)
        assert load_pdb(path) == _pdb()

    def test_csv_file(self, tmp_path):
        path = tmp_path / "db.csv"
        save_pdb(_pdb(), path)
        assert load_pdb(path) == _pdb()

    def test_unknown_extension(self, tmp_path):
        with pytest.raises(ReproError):
            save_pdb(_pdb(), tmp_path / "db.xml")
        with pytest.raises(ReproError):
            load_pdb(tmp_path / "db.xml")


class TestQueryRoundTrip:
    def test_round_trip(self):
        query = path_query(3)
        buffer = io.StringIO()
        dump_query(query, buffer)
        buffer.seek(0)
        assert load_query(buffer) == query


class TestBrokenFixtures:
    """Hardened load paths: every failure is a ContextualError naming
    the source file and the offending record."""

    def _write(self, tmp_path, name, text):
        path = tmp_path / name
        path.write_text(text)
        return path

    def test_truncated_json_names_file_and_position(self, tmp_path):
        path = self._write(
            tmp_path, "torn.json",
            '{"facts": [{"relation": "R", "constants": ["a"], "prob',
        )
        with pytest.raises(ContextualError) as failure:
            load_pdb(path)
        message = str(failure.value)
        assert "torn.json" in message
        assert "line" in message  # decoder position, not just "invalid"

    def test_wrong_schema_names_file(self, tmp_path):
        path = self._write(tmp_path, "wrong.json", '{"rows": []}')
        with pytest.raises(ContextualError, match="wrong.json"):
            load_pdb(path)

    def test_malformed_entry_names_record(self, tmp_path):
        path = self._write(
            tmp_path, "bad-entry.json",
            '{"facts": ['
            '{"relation": "R", "constants": ["a"], "probability": "1/2"},'
            '{"relation": "S"}]}',
        )
        with pytest.raises(ContextualError) as failure:
            load_pdb(path)
        message = str(failure.value)
        assert "bad-entry.json" in message
        assert "facts[1]" in message
        assert "missing" in message

    def test_string_constants_rejected_not_exploded(self, tmp_path):
        # A bare string would silently become one fact per character.
        path = self._write(
            tmp_path, "string-constants.json",
            '{"facts": [{"relation": "R", "constants": "ab", '
            '"probability": "1/2"}]}',
        )
        with pytest.raises(ContextualError, match=r"facts\[0\]"):
            load_pdb(path)

    def test_invalid_probability_names_record(self, tmp_path):
        path = self._write(
            tmp_path, "bad-prob.json",
            '{"facts": [{"relation": "R", "constants": ["a"], '
            '"probability": "one half"}]}',
        )
        with pytest.raises(ContextualError) as failure:
            load_pdb(path)
        message = str(failure.value)
        assert "facts[0]" in message
        assert "one half" in message

    def test_duplicate_fact_names_record(self, tmp_path):
        path = self._write(
            tmp_path, "dup.json",
            '{"facts": ['
            '{"relation": "R", "constants": ["a"], "probability": "1/2"},'
            '{"relation": "R", "constants": ["a"], "probability": "1/3"}'
            "]}",
        )
        with pytest.raises(ContextualError, match=r"facts\[1\]"):
            load_pdb(path)

    def test_csv_short_row_names_file_and_row(self, tmp_path):
        path = self._write(
            tmp_path, "short.csv", "R,1/2,a\nS,2/3\n"
        )
        with pytest.raises(ContextualError) as failure:
            load_pdb(path)
        message = str(failure.value)
        assert "short.csv" in message
        assert "row 2" in message

    def test_csv_bad_probability_names_row(self, tmp_path):
        path = self._write(
            tmp_path, "bad.csv", "R,1/2,a\nS,2/zero,b\n"
        )
        with pytest.raises(ContextualError) as failure:
            load_pdb(path)
        assert "row 2" in str(failure.value)

    def test_empty_query_file_named(self, tmp_path):
        path = self._write(tmp_path, "empty-query.txt", "   \n")
        with pytest.raises(ContextualError, match="empty-query.txt"):
            with open(path, encoding="utf-8") as stream:
                load_query(stream)

    def test_anonymous_stream_gets_placeholder(self):
        with pytest.raises(ContextualError, match="<stream>"):
            load_pdb_json(io.StringIO("not json"))

    def test_errors_carry_the_io_phase(self, tmp_path):
        path = self._write(tmp_path, "wrong.json", "[]")
        with pytest.raises(ContextualError) as failure:
            load_pdb(path)
        assert failure.value.phase == "io.load"
