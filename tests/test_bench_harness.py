"""Tests for the benchmark harness utilities."""

import math

import pytest

from repro.bench.harness import (
    ResultTable,
    fit_growth_exponent,
    relative_error,
    timed,
)


class TestResultTable:
    def test_render_contains_caption_and_cells(self):
        table = ResultTable("demo", ["x", "value"])
        table.add_row([1, 2.5])
        table.add_row([10, 0.00001])
        text = table.render()
        assert "== demo ==" in text
        assert "2.5" in text
        assert "e-05" in text

    def test_alignment(self):
        table = ResultTable("t", ["long_column_name", "y"])
        table.add_row(["a", "b"])
        lines = table.render().splitlines()
        assert len(lines) == 4

    def test_float_formatting(self):
        table = ResultTable("t", ["v"])
        table.add_row([0.0])
        table.add_row([1234567.0])
        text = table.render()
        assert "0" in text
        assert "e+06" in text


class TestTimed:
    def test_returns_result_and_positive_time(self):
        result, seconds = timed(lambda: sum(range(1000)))
        assert result == 499500
        assert seconds >= 0


class TestFitGrowthExponent:
    def test_linear(self):
        xs = [1, 2, 4, 8, 16]
        ys = [3 * x for x in xs]
        assert fit_growth_exponent(xs, ys) == pytest.approx(1.0)

    def test_quadratic(self):
        xs = [1, 2, 4, 8]
        ys = [5 * x * x for x in xs]
        assert fit_growth_exponent(xs, ys) == pytest.approx(2.0)

    def test_exponential_detected_as_superpolynomial(self):
        xs = [1, 2, 4, 8, 16, 32]
        ys = [2.0**x for x in xs]
        # Over a doubling range an exponential fits a slope well above
        # any small polynomial degree.
        assert fit_growth_exponent(xs, ys) > 4

    def test_drops_nonpositive(self):
        assert fit_growth_exponent([1, 2, 4], [0, 2, 4]) == pytest.approx(
            1.0
        )

    def test_insufficient_points(self):
        with pytest.raises(ValueError):
            fit_growth_exponent([1], [1])

    def test_identical_x(self):
        with pytest.raises(ValueError):
            fit_growth_exponent([2, 2], [1, 3])


class TestRelativeError:
    def test_basic(self):
        assert relative_error(110, 100) == pytest.approx(0.1)

    def test_zero_truth(self):
        assert relative_error(0, 0) == 0.0
        assert math.isinf(relative_error(1, 0))
