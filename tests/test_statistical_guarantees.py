"""Empirical (ε, δ) checks for the randomized estimators.

The paper's Theorems 1 and 3 promise ``Pr[|est − truth| ≤ ε·truth] ≥
1 − δ`` (with δ = 1/4 before median amplification).  These tests
measure that guarantee directly: ≥ 30 independent seeded trials of the
FPRAS on small instances whose exact answers come from an independent
evaluator, forced into the genuinely-sampled regime with
``exact_set_cap=0`` (otherwise the hybrid counter answers small
instances exactly and the trials would be vacuous).

Every trial seed is fixed, so the empirical failure counts are
reproducible — the suite is slow, not flaky.  It runs in its own CI
job via ``-m statistical``.
"""

import statistics

import pytest

from repro.core.exact import exact_probability, exact_uniform_reliability
from repro.core.pqe_estimate import pqe_estimate
from repro.core.ur_estimate import ur_estimate
from repro.db.fact import Fact
from repro.db.instance import DatabaseInstance
from repro.db.probabilistic import ProbabilisticDatabase
from repro.queries.parser import parse_query

pytestmark = pytest.mark.statistical

TRIALS = 30
EPSILON = 0.3
DELTA = 0.25          # the pre-amplification guarantee of Theorems 1/3

QUERY = parse_query("Q :- R1(x, y), R2(y, z)")

# Two join paths a→d plus dangling facts: ambiguous enough that the
# counter's union estimator actually samples, small enough that exact
# lineage/enumeration ground truth is instant.
PDB = ProbabilisticDatabase({
    Fact("R1", ("a", "b")): "1/2",
    Fact("R1", ("a", "c")): "2/3",
    Fact("R2", ("b", "d")): "3/4",
    Fact("R2", ("c", "d")): "2/5",
    Fact("R1", ("e", "b")): "1/3",
    Fact("R2", ("b", "f")): "1/2",
})

INSTANCE = DatabaseInstance([
    Fact("R1", ("a", "b")), Fact("R1", ("a", "c")),
    Fact("R2", ("b", "d")), Fact("R2", ("c", "d")),
    Fact("R2", ("b", "e")),
])


def _pqe_trial(seed: int, repetitions: int = 1) -> float:
    return pqe_estimate(
        QUERY, PDB, epsilon=EPSILON, seed=seed, method="fpras-weighted",
        exact_set_cap=0, repetitions=repetitions,
    ).estimate


def test_trials_are_really_sampled():
    result = pqe_estimate(
        QUERY, PDB, epsilon=EPSILON, seed=0, method="fpras-weighted",
        exact_set_cap=0,
    )
    assert not result.exact
    assert result.count_result.samples_used > 0


def test_pqe_fpras_meets_epsilon_delta_empirically():
    truth = float(exact_probability(QUERY, PDB, method="lineage"))
    estimates = [_pqe_trial(seed) for seed in range(TRIALS)]
    assert all(0.0 <= estimate <= 1.0 for estimate in estimates)
    failures = sum(
        1 for estimate in estimates
        if abs(estimate - truth) > EPSILON * truth
    )
    assert failures / TRIALS <= DELTA


def test_ur_fpras_meets_epsilon_delta_empirically():
    truth = exact_uniform_reliability(
        QUERY, INSTANCE, method="enumerate"
    )
    failures = 0
    for seed in range(TRIALS):
        estimate = ur_estimate(
            QUERY, INSTANCE, epsilon=EPSILON, seed=seed, exact_set_cap=0,
        ).estimate
        assert estimate >= 0
        if abs(estimate - truth) > EPSILON * truth:
            failures += 1
    assert failures / TRIALS <= DELTA


def test_pqe_fpras_is_centered_on_the_truth():
    # The estimator is (nearly) unbiased, so the trial mean must sit
    # well inside the single-trial envelope.
    truth = float(exact_probability(QUERY, PDB, method="lineage"))
    mean = statistics.fmean(_pqe_trial(seed) for seed in range(TRIALS))
    assert abs(mean - truth) <= (EPSILON / 2) * truth


def test_median_amplification_does_not_degrade():
    # Median-of-k can only sharpen the tail: amplified trials must fail
    # at most as often as single runs on the same seeds.
    truth = float(exact_probability(QUERY, PDB, method="lineage"))

    def failures(repetitions: int) -> int:
        return sum(
            1 for seed in range(TRIALS)
            if abs(_pqe_trial(seed, repetitions) - truth) > EPSILON * truth
        )

    assert failures(3) <= failures(1) + 1


# ---------------------------------------------------------------------
# RPQ FPRAS over probabilistic graphs (see docs/graphs.md)
# ---------------------------------------------------------------------

from repro.core.estimator import PQEEngine               # noqa: E402
from repro.graphs import (                               # noqa: E402
    rpq_brute_force,
    rpq_probability_estimate,
)
from repro.workloads import grid_graph, rpq_workloads    # noqa: E402

RPQ_TRIALS = 200
RPQ_EPSILON = 0.3

#: grid23-ab from the pinned workload corpus: 7 relevant edges, so the
#: brute-force truth is instant, and the regex forces genuine Karp–Luby
#: unions in the product counter.
_RPQ_NAME, _RPQ_GRAPH, _RPQ_QUERY = next(
    case for case in rpq_workloads() if case[0] == "grid23-ab"
)


def _rpq_trial(seed: int, epsilon: float = RPQ_EPSILON,
               repetitions: int = 1) -> float:
    return rpq_probability_estimate(
        _RPQ_GRAPH, _RPQ_QUERY, method="fpras", epsilon=epsilon,
        seed=seed, exact_set_cap=0, repetitions=repetitions,
    ).estimate


def test_rpq_trials_are_really_sampled():
    result = rpq_probability_estimate(
        _RPQ_GRAPH, _RPQ_QUERY, method="fpras", epsilon=RPQ_EPSILON,
        seed=0, exact_set_cap=0,
    )
    assert not result.exact
    assert result.samples_used > 0


def test_rpq_fpras_meets_epsilon_delta_over_200_trials():
    truth = float(rpq_brute_force(_RPQ_GRAPH, _RPQ_QUERY))
    failures = 0
    for seed in range(RPQ_TRIALS):
        estimate = _rpq_trial(seed)
        assert 0.0 <= estimate <= 1.0
        if abs(estimate - truth) > RPQ_EPSILON * truth:
            failures += 1
    assert failures / RPQ_TRIALS <= DELTA


def test_rpq_fpras_is_centered_on_the_truth():
    truth = float(rpq_brute_force(_RPQ_GRAPH, _RPQ_QUERY))
    mean = statistics.fmean(
        _rpq_trial(seed) for seed in range(RPQ_TRIALS)
    )
    assert abs(mean - truth) <= (RPQ_EPSILON / 2) * truth


def test_rpq_median_amplification_does_not_degrade():
    truth = float(rpq_brute_force(_RPQ_GRAPH, _RPQ_QUERY))

    def failures(repetitions: int) -> int:
        return sum(
            1 for seed in range(60)
            if abs(_rpq_trial(seed, repetitions=repetitions) - truth)
            > RPQ_EPSILON * truth
        )

    assert failures(3) <= failures(1) + 1


def test_rpq_sample_count_scales_inverse_quadratically_in_epsilon():
    # default_sample_count grows ∝ 1/ε² once past its floor of 64
    # samples per union; the telemetry counter aggregates the actual
    # draws, so halving ε four-folds it (up to the shared floor and
    # per-node rounding).  Measured off the engine's counters, as the
    # issue requires — not off the estimator's return value.
    def samples(epsilon: float) -> int:
        engine = PQEEngine(
            seed=12, epsilon=epsilon, exact_set_cap=0
        )
        answer = engine.rpq_probability(
            _RPQ_GRAPH, _RPQ_QUERY, method="fpras", telemetry=True
        )
        assert not answer.exact
        return answer.telemetry.counter("rpq.count.samples")

    coarse = samples(0.4)
    fine = samples(0.1)
    assert coarse > 0
    ratio = fine / coarse
    assert 8.0 <= ratio <= 32.0, (
        f"samples went {coarse} -> {fine} (ratio {ratio:.1f}); "
        f"expected ~16x for a 4x epsilon reduction"
    )
