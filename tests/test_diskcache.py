"""Tests for the durable disk cache tier (repro.core.diskcache).

The integrity contract under test: every record is checksummed and
written atomically; any verification failure — bit flip, truncation,
wrong magic, foreign format version, key mismatch — quarantines the
record with a :class:`DiskCacheWarning` and reports a miss.  Corruption
is never an exception and never a wrong value.
"""

import os
import pickle
import warnings

import pytest

from repro.core.cache import ReductionCache
from repro.core.diskcache import (
    DISK_FORMAT_VERSION,
    DiskCache,
    DiskCacheWarning,
)
from repro.errors import DiskCacheError
from repro.obs import EvaluationTelemetry, telemetry_scope
from repro.testing.faults import flip_bit, truncate_tail


@pytest.fixture
def cache(tmp_path) -> DiskCache:
    return DiskCache(tmp_path / "cache")


class TestRoundTrip:
    def test_store_then_load(self, cache):
        assert cache.store(("pqe", "token"), {"answer": 42})
        assert cache.load(("pqe", "token")) == {"answer": 42}

    def test_missing_key_returns_default(self, cache):
        sentinel = object()
        assert cache.load(("absent",), sentinel) is sentinel

    def test_persists_across_instances(self, cache):
        cache.store("key", [1, 2, 3])
        reopened = DiskCache(cache.path)
        assert reopened.load("key") == [1, 2, 3]

    def test_overwrite_wins(self, cache):
        cache.store("key", "old")
        cache.store("key", "new")
        assert cache.load("key") == "new"

    def test_len_counts_records(self, cache):
        assert len(cache) == 0
        cache.store("a", 1)
        cache.store("b", 2)
        assert len(cache) == 2

    def test_clear_drops_everything(self, cache):
        cache.store("a", 1)
        cache.clear()
        assert len(cache) == 0
        assert cache.load("a") is None

    def test_unpicklable_value_is_refused_not_fatal(self, cache):
        assert cache.store("bad", lambda: None) is False
        assert cache.load("bad") is None
        assert len(cache) == 0


class TestCorruptionQuarantine:
    def _assert_quarantined(self, cache, key, match):
        with pytest.warns(DiskCacheWarning, match=match):
            assert cache.load(key, "default") == "default"
        assert not cache.record_path(key).exists()
        assert len(cache.quarantined()) == 1

    @pytest.mark.parametrize("offset", [-1, 0, 4, 6, 40, 60])
    def test_bit_flip_anywhere_never_raises(self, cache, offset):
        cache.store("key", {"value": list(range(50))})
        record = cache.record_path("key")
        if offset >= record.stat().st_size:
            pytest.skip("record shorter than offset")
        flip_bit(record, offset=offset, bit=3)
        with pytest.warns(DiskCacheWarning):
            assert cache.load("key", "default") == "default"

    def test_bit_flip_in_payload_is_checksum_mismatch(self, cache):
        cache.store("key", "value")
        flip_bit(cache.record_path("key"), offset=-1, bit=0)
        self._assert_quarantined(cache, "key", "quarantined")

    def test_truncated_record(self, cache):
        cache.store("key", "value")
        truncate_tail(cache.record_path("key"), drop_bytes=3)
        self._assert_quarantined(cache, "key", "truncated")

    def test_not_a_cache_record(self, cache):
        cache.record_path("key").write_bytes(b"garbage")
        self._assert_quarantined(cache, "key", "not a cache record")

    def test_future_format_version(self, cache):
        cache.store("key", "value")
        record = cache.record_path("key")
        blob = bytearray(record.read_bytes())
        blob[4] = DISK_FORMAT_VERSION + 1
        record.write_bytes(bytes(blob))
        self._assert_quarantined(cache, "key", "format version")

    def test_key_mismatch(self, cache):
        # A structurally valid record sitting at the wrong path (e.g.
        # an operator copied cache files around) must not be served.
        cache.store("actual", "value")
        cache.record_path("actual").rename(cache.record_path("other"))
        self._assert_quarantined(cache, "other", "key mismatch")

    def test_unreadable_payload(self, cache):
        # Valid framing around a payload that is not a pickle at all.
        import hashlib

        payload = b"not a pickle"
        record = (
            b"RPDC"
            + bytes([DISK_FORMAT_VERSION])
            + hashlib.sha256(payload).digest()
            + len(payload).to_bytes(8, "big")
            + payload
        )
        cache.record_path("key").write_bytes(record)
        self._assert_quarantined(cache, "key", "unreadable")

    def test_quarantine_preserves_evidence(self, cache):
        cache.store("key", "value")
        flip_bit(cache.record_path("key"), offset=-1)
        with pytest.warns(DiskCacheWarning):
            cache.load("key")
        [evidence] = cache.quarantined()
        assert evidence.read_bytes()  # moved aside intact, not deleted

    def test_intact_sibling_survives_quarantine(self, cache):
        cache.store("good", "kept")
        cache.store("bad", "doomed")
        flip_bit(cache.record_path("bad"), offset=-1)
        with pytest.warns(DiskCacheWarning):
            cache.load("bad")
        assert cache.load("good") == "kept"


class TestConfigErrors:
    def test_path_is_a_file(self, tmp_path):
        blocker = tmp_path / "blocker"
        blocker.write_text("not a directory")
        with pytest.raises(DiskCacheError):
            DiskCache(blocker)


class TestMemoryCacheIntegration:
    def test_disk_hit_skips_builder(self, tmp_path):
        disk = DiskCache(tmp_path / "cache")
        builds = []

        def builder():
            builds.append(1)
            return "built"

        first = ReductionCache(disk=disk)
        assert first.get_or_build("key", builder) == "built"
        # A fresh memory cache over the same directory: the build is
        # served durably, the builder never runs again.
        second = ReductionCache(disk=disk)
        assert second.get_or_build("key", builder) == "built"
        assert len(builds) == 1

    def test_disk_hit_still_counts_as_memory_miss(self, tmp_path):
        # Cache stats stay a function of the request multiset: where
        # the value came from (builder vs disk) is invisible to them.
        disk = DiskCache(tmp_path / "cache")
        ReductionCache(disk=disk).get_or_build("key", lambda: "v")
        warmed = ReductionCache(disk=disk)
        warmed.get_or_build("key", lambda: "v")
        warmed.get_or_build("key", lambda: "v")
        assert warmed.stats.misses == 1
        assert warmed.stats.hits == 1

    def test_cache_if_false_is_not_persisted(self, tmp_path):
        # Seed-dependent sampled counts stay private to the run at both
        # tiers.
        disk = DiskCache(tmp_path / "cache")
        cache = ReductionCache(disk=disk)
        cache.get_or_build("key", lambda: "v", cache_if=lambda _: False)
        assert len(disk) == 0

    def test_corrupt_disk_record_falls_back_to_builder(self, tmp_path):
        disk = DiskCache(tmp_path / "cache")
        ReductionCache(disk=disk).get_or_build("key", lambda: "good")
        flip_bit(disk.record_path("key"), offset=-1)
        with pytest.warns(DiskCacheWarning):
            value = ReductionCache(disk=disk).get_or_build(
                "key", lambda: "rebuilt"
            )
        assert value == "rebuilt"

    def test_no_disk_tier_by_default(self):
        assert ReductionCache().disk is None


class TestCrossProcessSafety:
    def test_atomic_publish_leaves_no_torn_record(self, cache):
        # A reader that races the writer sees the old record or the new
        # one; the staging .tmp never matches the record glob.
        cache.store("key", "v1")
        strays = [p for p in cache.path.iterdir() if p.suffix == ".tmp"]
        assert strays == []

    def test_two_handles_one_directory(self, tmp_path):
        a = DiskCache(tmp_path / "cache")
        b = DiskCache(tmp_path / "cache")
        a.store("key", "from-a")
        assert b.load("key") == "from-a"
        b.store("key", "from-b")
        assert a.load("key") == "from-b"


class TestQuarantineCap:
    """``quarantine/`` is evidence, not an archive: it must not grow
    without bound on a long-lived daemon."""

    def _corrupt(self, cache, key, mtime=None):
        """Corrupt ``key``'s record so the next load quarantines it;
        optionally back-date the evidence for eviction-order tests."""
        cache.store(key, f"value-{key}")
        flip_bit(cache.record_path(key), offset=-1)
        evidence = (
            cache.path / "quarantine" / cache.record_path(key).name
        )
        if mtime is not None:
            # Pre-stamp so the mtime survives the quarantine rename
            # (rename preserves it) and stays distinct even on coarse
            # filesystem clocks.
            os.utime(cache.record_path(key), (mtime, mtime))
        with warnings.catch_warnings():
            warnings.simplefilter("ignore", DiskCacheWarning)
            assert cache.load(key) is None
        return evidence

    def test_oldest_quarantined_records_are_evicted(self, tmp_path):
        cache = DiskCache(tmp_path / "cache", max_quarantine=3)
        for i in range(5):
            self._corrupt(cache, f"key-{i}", mtime=i)
        survivors = cache.quarantined()
        assert len(survivors) == 3
        # The survivors are the *newest* three (mtimes 2, 3, 4).
        assert sorted(p.stat().st_mtime for p in survivors) == [2, 3, 4]

    def test_eviction_is_counted(self, tmp_path):
        cache = DiskCache(tmp_path / "cache", max_quarantine=1)
        telemetry = EvaluationTelemetry()
        with telemetry_scope(telemetry):
            for i in range(4):
                self._corrupt(cache, f"key-{i}", mtime=i)
        assert len(cache.quarantined()) == 1
        counters = telemetry.metrics.counters
        assert counters["diskcache.quarantines"] == 4
        assert counters["diskcache.quarantine.evicted"] == 3

    def test_cap_zero_keeps_no_evidence(self, tmp_path):
        cache = DiskCache(tmp_path / "cache", max_quarantine=0)
        self._corrupt(cache, "key")
        assert cache.quarantined() == []

    def test_cap_is_validated(self, tmp_path):
        with pytest.raises(DiskCacheError, match="max_quarantine"):
            DiskCache(tmp_path / "cache", max_quarantine=-1)

    def test_tier_stats_reports_both_tiers(self, tmp_path):
        cache = DiskCache(tmp_path / "cache", max_quarantine=8)
        cache.store("good", "value")
        self._corrupt(cache, "bad")
        stats = cache.tier_stats()
        assert stats["records"] == 1
        assert stats["quarantined"] == 1
        assert stats["quarantine_cap"] == 8
        assert stats["bytes"] > 0
        assert stats["quarantine_bytes"] > 0
        assert stats["quarantine_files"] == [
            cache.quarantined()[0].name
        ]
