"""Cross-validation property suite: random queries, every evaluator.

Hypothesis generates random self-join-free conjunctive queries (random
shapes, arities 1–3, shared variables, possibly cyclic or disconnected)
and random small instances; every pair of independent evaluation paths
must agree:

  brute-force enumeration == lineage WMC == Prop-1 automaton count
  == safe plan (when hierarchical) == multiplier automaton (for PQE)

This is the strongest correctness net in the repository: a bug in any
of the decomposition, construction, translation, or counting layers
surfaces as a disagreement here.
"""

import random
from fractions import Fraction

from hypothesis import given, settings
from hypothesis import strategies as st

from repro.automata.nfta_counting import count_nfta_exact
from repro.core.exact import exact_probability, exact_uniform_reliability
from repro.core.pqe_estimate import pqe_estimate
from repro.core.ur_reduction import build_ur_reduction
from repro.db.fact import Fact
from repro.db.instance import DatabaseInstance
from repro.db.probabilistic import ProbabilisticDatabase
from repro.queries.atoms import Atom, Variable
from repro.queries.cq import ConjunctiveQuery
from repro.queries.properties import is_hierarchical
from repro.queries.safe_plan import safe_plan_probability

_PROBS = [
    Fraction(0), Fraction(1), Fraction(1, 2), Fraction(1, 3),
    Fraction(2, 3), Fraction(3, 4), Fraction(2, 5),
]


def _random_sjf_query(rng: random.Random) -> ConjunctiveQuery:
    num_atoms = rng.randint(1, 4)
    pool = [Variable(f"v{i}") for i in range(5)]
    atoms = []
    used = [pool[0]]
    for index in range(num_atoms):
        arity = rng.randint(1, 3)
        args = []
        for position in range(arity):
            # Bias toward already-used variables so atoms connect.
            if used and rng.random() < 0.7:
                args.append(rng.choice(used))
            else:
                fresh = rng.choice(pool)
                args.append(fresh)
        for var in args:
            if var not in used:
                used.append(var)
        atoms.append(Atom(f"R{index}", tuple(args)))
    return ConjunctiveQuery(atoms)


def _random_instance(
    query: ConjunctiveQuery, rng: random.Random, max_facts: int
) -> DatabaseInstance:
    constants = ["a", "b", "c"]
    facts: set[Fact] = set()
    for atom in query.atoms:
        for _ in range(rng.randint(1, 3)):
            facts.add(
                Fact(
                    atom.relation,
                    tuple(rng.choice(constants) for _ in range(atom.arity)),
                )
            )
    # Inject one canonical witness half the time so UR > 0 often.
    if rng.random() < 0.5:
        assignment = {v: rng.choice(constants) for v in query.variables}
        for atom in query.atoms:
            facts.add(
                Fact(atom.relation, tuple(assignment[v] for v in atom.args))
            )
    trimmed = sorted(facts, key=Fact.sort_key)[:max_facts]
    return DatabaseInstance(trimmed)


@given(st.integers(min_value=0, max_value=100_000))
@settings(max_examples=40, deadline=None)
def test_ur_all_paths_agree(seed):
    rng = random.Random(seed)
    query = _random_sjf_query(rng)
    if len(query.variables) > 5:
        return
    instance = _random_instance(query, rng, max_facts=9)

    brute = exact_uniform_reliability(query, instance, method="enumerate")
    via_lineage = exact_uniform_reliability(query, instance, method="lineage")
    assert brute == via_lineage

    reduction = build_ur_reduction(query, instance)
    via_automaton = (
        count_nfta_exact(reduction.nfta, reduction.tree_size)
        * reduction.scale
    )
    assert via_automaton == brute, str(query)


@given(st.integers(min_value=0, max_value=100_000))
@settings(max_examples=30, deadline=None)
def test_pqe_all_paths_agree(seed):
    rng = random.Random(seed)
    query = _random_sjf_query(rng)
    if len(query.variables) > 5:
        return
    instance = _random_instance(query, rng, max_facts=8)
    pdb = ProbabilisticDatabase(
        {fact: rng.choice(_PROBS) for fact in instance}
    )

    brute = exact_probability(query, pdb, method="enumerate")
    via_lineage = exact_probability(query, pdb, method="lineage")
    assert brute == via_lineage

    via_automaton = pqe_estimate(query, pdb, method="exact-automaton")
    assert abs(via_automaton.estimate - float(brute)) <= 1e-9, str(query)

    if is_hierarchical(query):
        assert safe_plan_probability(query, pdb) == brute, str(query)


@given(st.integers(min_value=0, max_value=100_000))
@settings(max_examples=20, deadline=None)
def test_engine_routes_agree_metamorphically(seed):
    """Metamorphic cross-backend check through the PQEEngine facade.

    Changing the evaluation route must not change the answer: every
    exact route agrees to rounding, and the randomized FPRAS lands in a
    loose envelope around them (or exactly on 0/1, which the reduction
    preserves exactly).
    """
    from repro.core.estimator import PQEEngine

    rng = random.Random(seed)
    query = _random_sjf_query(rng)
    if len(query.variables) > 5:
        return
    instance = _random_instance(query, rng, max_facts=8)
    pdb = ProbabilisticDatabase(
        {fact: rng.choice(_PROBS[2:]) for fact in instance}
    )
    engine = PQEEngine(epsilon=0.3, seed=seed, repetitions=3)

    exact_routes = ["enumerate", "lineage-exact"]
    if is_hierarchical(query):
        exact_routes.append("safe-plan")
        exact_routes.append("lifted")
    answers = {
        route: engine.probability(query, pdb, method=route)
        for route in exact_routes
    }
    truth = answers["enumerate"].rational
    for route, answer in answers.items():
        assert answer.exact
        assert answer.rational == truth, (route, str(query))

    fpras = engine.probability(query, pdb, method="fpras-weighted")
    if truth == 0:
        assert fpras.value == 0
    else:
        assert abs(fpras.value - float(truth)) / float(truth) < 0.75, (
            str(query)
        )

    auto = engine.probability(query, pdb)
    if auto.exact:
        assert abs(auto.value - float(truth)) <= 1e-9
    elif truth > 0:
        assert abs(auto.value - float(truth)) / float(truth) < 0.75


@given(st.integers(min_value=0, max_value=100_000))
@settings(max_examples=20, deadline=None)
def test_fpras_inside_envelope_or_zero(seed):
    rng = random.Random(seed)
    query = _random_sjf_query(rng)
    if len(query.variables) > 5:
        return
    instance = _random_instance(query, rng, max_facts=8)
    pdb = ProbabilisticDatabase(
        {fact: rng.choice(_PROBS[2:]) for fact in instance}
    )
    truth = float(exact_probability(query, pdb, method="lineage"))
    result = pqe_estimate(
        query, pdb, epsilon=0.3, seed=seed, repetitions=3
    )
    if truth == 0:
        assert result.estimate == 0
    else:
        assert abs(result.estimate - truth) / truth < 0.75, str(query)
