"""Run the doctest examples embedded in module documentation."""

import doctest

import pytest

import repro.automata.symbols
import repro.automata.trees
import repro.db.fact
import repro.db.instance
import repro.db.probabilistic
import repro.db.schema
import repro.queries.atoms
import repro.queries.builders
import repro.queries.cq
import repro.queries.parser
import repro.queries.properties

MODULES = [
    repro.queries.atoms,
    repro.queries.cq,
    repro.queries.parser,
    repro.queries.builders,
    repro.queries.properties,
    repro.db.schema,
    repro.db.fact,
    repro.db.instance,
    repro.db.probabilistic,
    repro.automata.trees,
    repro.automata.symbols,
]


@pytest.mark.parametrize(
    "module", MODULES, ids=lambda m: m.__name__
)
def test_module_doctests(module):
    results = doctest.testmod(module, verbose=False)
    assert results.failed == 0, (
        f"{results.failed} doctest failure(s) in {module.__name__}"
    )


def test_doctests_actually_present():
    # Guard against silently passing because nothing was collected.
    total = sum(
        doctest.testmod(m, verbose=False).attempted for m in MODULES
    )
    assert total >= 10
